#ifndef XBENCH_OBS_TRACE_H_
#define XBENCH_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace xbench::obs {

/// One begin/end edge of a span. `ts` is in deterministic ticks (see
/// Tracer::NowTicks); `depth` is the nesting depth at the time the edge
/// was recorded (begin edges record the depth of the opened span), and
/// `lane` is the 1-based lane (Chrome trace `tid`) of the recording
/// thread.
struct TraceEvent {
  enum class Phase { kBegin, kEnd };
  Phase phase;
  std::string name;
  uint64_t ts = 0;
  size_t depth = 0;
  uint32_t lane = 1;
};

/// Hierarchical span tracer with a *deterministic* timeline: timestamps
/// are derived from the registered engine VirtualClock (simulated I/O
/// micros, scaled to ticks) plus a logical tick that breaks ties, never
/// from the wall clock. Two runs of the same workload therefore produce
/// byte-identical traces. Disabled by default; when disabled, ScopedSpan
/// costs one atomic load.
///
/// Thread safety: the enabled flag and clock source are atomics, and the
/// event log serializes on an internal mutex, so spans from concurrent
/// sessions interleave without races. Each recording thread gets its own
/// *lane* (Chrome trace `tid`) with an independent span stack, so
/// multi-session runs export one timeline row per worker; name a lane
/// with SetCurrentThreadName. The tick sequence is still process-global,
/// so byte-identical traces require a single-threaded run.
class Tracer {
 public:
  /// Ticks per virtual microsecond; the tie-breaking logical tick
  /// advances in units of 1, so up to kTicksPerMicro CPU-only events fit
  /// between two I/O charges without reordering.
  static constexpr uint64_t kTicksPerMicro = 1024;

  static Tracer& Default();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded events and resets the timeline.
  void Clear();

  /// Registers the virtual clock that drives span timestamps (nullptr
  /// detaches; the timeline then advances by logical ticks only). Use
  /// ScopedClockSource to scope this to an engine operation.
  void SetClockSource(const VirtualClock* clock) {
    clock_.store(clock, std::memory_order_relaxed);
  }
  const VirtualClock* clock_source() const {
    return clock_.load(std::memory_order_relaxed);
  }

  /// Current deterministic timestamp: max(virtual-clock ticks, last+1).
  uint64_t NowTicks();

  void BeginSpan(std::string name);
  void EndSpan();

  /// Names the calling thread's lane; exported as a `thread_name`
  /// metadata event so trace viewers label the row (e.g. "session-3").
  void SetCurrentThreadName(std::string name);

  /// Nesting depth of spans currently open on the *calling thread's*
  /// lane (0 if this thread has not recorded anything yet).
  size_t depth() const {
    MutexLock lock(mu_);
    auto it = lane_ids_.find(std::this_thread::get_id());
    return it == lane_ids_.end() ? 0 : lanes_[it->second].depth;
  }
  /// Snapshot of the recorded events. (Tests and report writers call this
  /// after the traced region has quiesced.)
  std::vector<TraceEvent> events() const {
    MutexLock lock(mu_);
    return events_;
  }

  /// Serializes to Chrome trace-event JSON (load in chrome://tracing or
  /// Perfetto). Timestamps are virtual ticks reported as microseconds;
  /// each lane becomes a `tid` row preceded by a `thread_name` metadata
  /// event when the lane was named.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  /// Per-lane span stack state. Lane 0 is reserved; Chrome `tid`s are
  /// the 1-based indices so the default lane renders as tid 1.
  struct LaneState {
    std::string name;
    size_t depth = 0;
  };

  uint64_t NowTicksLocked() XBENCH_REQUIRES(mu_);
  /// Lane index of the calling thread, assigning the next free lane on
  /// first use.
  size_t LaneForThisThreadLocked() XBENCH_REQUIRES(mu_);

  std::atomic<bool> enabled_{false};
  std::atomic<const VirtualClock*> clock_{nullptr};
  mutable Mutex mu_{LockRank::kTracer, "tracer"};
  uint64_t last_ticks_ XBENCH_GUARDED_BY(mu_) = 0;
  std::map<std::thread::id, size_t> lane_ids_ XBENCH_GUARDED_BY(mu_);
  std::vector<LaneState> lanes_ XBENCH_GUARDED_BY(mu_);
  std::vector<TraceEvent> events_ XBENCH_GUARDED_BY(mu_);
};

/// RAII span guard: opens a span on the tracer if it is enabled, closes
/// it on scope exit. With tracing disabled this compiles to an
/// enabled-flag check and a null store.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Tracer& tracer = Tracer::Default())
      : tracer_(tracer.enabled() ? &tracer : nullptr) {
    if (tracer_ != nullptr) tracer_->BeginSpan(name);
  }
  explicit ScopedSpan(std::string name, Tracer& tracer = Tracer::Default())
      : tracer_(tracer.enabled() ? &tracer : nullptr) {
    if (tracer_ != nullptr) tracer_->BeginSpan(std::move(name));
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
};

/// RAII: points the tracer at `clock` for the current scope, restoring
/// the previous source afterwards. Engine entry points use this so spans
/// recorded inside an operation are stamped with that engine's virtual
/// I/O time.
class ScopedClockSource {
 public:
  explicit ScopedClockSource(const VirtualClock& clock,
                             Tracer& tracer = Tracer::Default())
      : tracer_(&tracer), previous_(tracer.clock_source()) {
    tracer_->SetClockSource(&clock);
  }
  ~ScopedClockSource() { tracer_->SetClockSource(previous_); }

  ScopedClockSource(const ScopedClockSource&) = delete;
  ScopedClockSource& operator=(const ScopedClockSource&) = delete;

 private:
  Tracer* tracer_;
  const VirtualClock* previous_;
};

/// Environment hook: if XBENCH_TRACE_OUT=<path> (or the legacy
/// XBENCH_TRACE=<path>) is set, construction enables the default tracer
/// (clearing any stale events) and destruction writes the Chrome trace
/// to <path>. Benchmarks and examples put one at the top of main().
class EnvTraceSession {
 public:
  explicit EnvTraceSession(Tracer& tracer = Tracer::Default());
  ~EnvTraceSession();

  bool active() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  EnvTraceSession(const EnvTraceSession&) = delete;
  EnvTraceSession& operator=(const EnvTraceSession&) = delete;

 private:
  Tracer* tracer_;
  std::string path_;
};

}  // namespace xbench::obs

#endif  // XBENCH_OBS_TRACE_H_
