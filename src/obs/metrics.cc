#include "obs/metrics.h"

#include <bit>

#include "obs/json.h"

namespace xbench::obs {

void Histogram::Record(uint64_t sample) {
  if (!*enabled_) return;
  ++count_;
  sum_ += sample;
  if (sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
  ++buckets_[sample == 0 ? 0 : std::bit_width(sample) - 1];
}

uint64_t Histogram::ApproxPercentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  uint64_t rank =
      static_cast<uint64_t>(p * static_cast<double>(count_) + 0.999999);
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Upper bound of bucket i, clamped to the observed max.
      const uint64_t bound =
          i >= 63 ? max_ : (static_cast<uint64_t>(1) << (i + 1)) - 1;
      return bound < max_ ? bound : max_;
    }
  }
  return max_;
}

void Histogram::Reset() {
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
  buckets_.fill(0);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(enabled_.get())))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(enabled_.get())))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(enabled_.get())))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::ResetAll() {
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

void MetricsRegistry::WriteJson(JsonWriter& writer) const {
  writer.BeginObject();
  writer.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    writer.Key(name).Uint(counter->value());
  }
  writer.EndObject();
  writer.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    writer.Key(name).Number(gauge->value());
  }
  writer.EndObject();
  writer.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    writer.Key(name)
        .BeginObject()
        .Key("count")
        .Uint(histogram->count())
        .Key("sum")
        .Uint(histogram->sum())
        .Key("min")
        .Uint(histogram->min())
        .Key("max")
        .Uint(histogram->max())
        .Key("mean")
        .Number(histogram->Mean())
        .Key("p50")
        .Uint(histogram->ApproxPercentile(0.5))
        .Key("p99")
        .Uint(histogram->ApproxPercentile(0.99))
        .EndObject();
  }
  writer.EndObject();
  writer.EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter writer;
  WriteJson(writer);
  return writer.TakeString();
}

}  // namespace xbench::obs
