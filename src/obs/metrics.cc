#include "obs/metrics.h"

#include <bit>

#include "obs/json.h"

namespace xbench::obs {

namespace {

/// CAS-folds `sample` into `slot` with the monotone comparison `better`.
template <typename Better>
void AtomicFold(std::atomic<uint64_t>& slot, uint64_t sample, Better better) {
  uint64_t current = slot.load(std::memory_order_relaxed);
  while (better(sample, current) &&
         !slot.compare_exchange_weak(current, sample,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

size_t Histogram::BucketIndex(uint64_t sample) {
  if (sample < kSubBuckets) return static_cast<size_t>(sample);
  // Octave = bit width above the 5 bits the first 16+16 buckets resolve;
  // the 4 bits after the leading 1 select the sub-bucket.
  const int shift = std::bit_width(sample) - 5;
  return kSubBuckets + static_cast<size_t>(shift) * kSubBuckets +
         static_cast<size_t>((sample >> shift) & (kSubBuckets - 1));
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i < kSubBuckets) return i;
  const size_t octave = (i - kSubBuckets) / kSubBuckets;
  const size_t sub = (i - kSubBuckets) % kSubBuckets;
  // ((17 + sub) << 59) wraps to 2^64 for the topmost bucket; the - 1 then
  // yields UINT64_MAX, which is exactly that bucket's inclusive bound.
  return ((static_cast<uint64_t>(kSubBuckets + sub + 1)) << octave) - 1;
}

void Histogram::Record(uint64_t sample) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  AtomicFold(min_, sample, [](uint64_t s, uint64_t cur) { return s < cur; });
  AtomicFold(max_, sample, [](uint64_t s, uint64_t cur) { return s > cur; });
  buckets_[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
}

uint64_t Histogram::ApproxPercentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(n) + 0.999999);
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  const uint64_t observed_max = max();
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen >= rank) {
      // Upper bound of bucket i, clamped to the observed max.
      const uint64_t bound = BucketUpperBound(i);
      return bound < observed_max ? bound : observed_max;
    }
  }
  return observed_max;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<uint64_t>::max(), std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(enabled_.get())))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(enabled_.get())))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(enabled_.get())))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

void MetricsRegistry::WriteJson(JsonWriter& writer) const {
  MutexLock lock(mu_);
  writer.BeginObject();
  writer.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    writer.Key(name).Uint(counter->value());
  }
  writer.EndObject();
  writer.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    writer.Key(name).Number(gauge->value());
  }
  writer.EndObject();
  writer.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    writer.Key(name)
        .BeginObject()
        .Key("count")
        .Uint(histogram->count())
        .Key("sum")
        .Uint(histogram->sum())
        .Key("min")
        .Uint(histogram->min())
        .Key("max")
        .Uint(histogram->max())
        .Key("mean")
        .Number(histogram->Mean())
        .Key("p50")
        .Uint(histogram->ApproxPercentile(0.5))
        .Key("p90")
        .Uint(histogram->ApproxPercentile(0.9))
        .Key("p99")
        .Uint(histogram->ApproxPercentile(0.99))
        .Key("p999")
        .Uint(histogram->ApproxPercentile(0.999))
        .EndObject();
  }
  writer.EndObject();
  writer.EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter writer;
  WriteJson(writer);
  return writer.TakeString();
}

}  // namespace xbench::obs
