#ifndef XBENCH_OBS_EXPORT_H_
#define XBENCH_OBS_EXPORT_H_

#include <string>

#include "common/status.h"

namespace xbench::obs {

class MetricsRegistry;

/// Serializes `registry` in the OpenMetrics text exposition format
/// (Prometheus-scrapable). Naming: metric-name dots become underscores
/// (`xbench.pool.hits` -> `xbench_pool_hits`); counters get the `_total`
/// suffix; histograms expose cumulative `le` buckets (only non-empty
/// ones plus `+Inf`) with `_sum`/`_count`, using the log-linear bucket
/// bounds from obs::Histogram. Output is deterministically ordered by
/// name and terminated by `# EOF`.
std::string ToOpenMetrics(const MetricsRegistry& registry);

/// Writes ToOpenMetrics(registry) to `path`.
Status WriteOpenMetrics(const MetricsRegistry& registry,
                        const std::string& path);

}  // namespace xbench::obs

#endif  // XBENCH_OBS_EXPORT_H_
