#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace xbench::obs {

namespace {

/// OpenMetrics metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's
/// dotted convention maps dots (and any other byte outside that set) to
/// underscores.
std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (size_t i = 0; i < out.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(out[i]);
    const bool ok = std::isalpha(c) != 0 || c == '_' || c == ':' ||
                    (i > 0 && std::isdigit(c) != 0);
    if (!ok) out[i] = '_';
  }
  return out;
}

void AppendUint(std::string& out, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out += buf;
}

void AppendDouble(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

}  // namespace

std::string ToOpenMetrics(const MetricsRegistry& registry) {
  std::string out;
  MutexLock lock(registry.mu_);
  for (const auto& [name, counter] : registry.counters_) {
    const std::string metric = SanitizeName(name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + "_total ";
    AppendUint(out, counter->value());
    out += '\n';
  }
  for (const auto& [name, gauge] : registry.gauges_) {
    const std::string metric = SanitizeName(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + ' ';
    AppendDouble(out, gauge->value());
    out += '\n';
  }
  for (const auto& [name, histogram] : registry.histograms_) {
    const std::string metric = SanitizeName(name);
    out += "# TYPE " + metric + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      const uint64_t n = histogram->bucket(i);
      if (n == 0) continue;
      cumulative += n;
      out += metric + "_bucket{le=\"";
      AppendUint(out, Histogram::BucketUpperBound(i));
      out += "\"} ";
      AppendUint(out, cumulative);
      out += '\n';
    }
    out += metric + "_bucket{le=\"+Inf\"} ";
    AppendUint(out, histogram->count());
    out += '\n';
    out += metric + "_sum ";
    AppendUint(out, histogram->sum());
    out += '\n';
    out += metric + "_count ";
    AppendUint(out, histogram->count());
    out += '\n';
  }
  out += "# EOF\n";
  return out;
}

Status WriteOpenMetrics(const MetricsRegistry& registry,
                        const std::string& path) {
  return WriteFile(path, ToOpenMetrics(registry));
}

}  // namespace xbench::obs
