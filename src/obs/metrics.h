#ifndef XBENCH_OBS_METRICS_H_
#define XBENCH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/sync.h"
#include "common/thread_annotations.h"

namespace xbench::obs {

class JsonWriter;
class MetricsRegistry;

/// Monotonically increasing counter. Handles are stable for the lifetime
/// of the owning registry, so instrumented code fetches one once and then
/// pays only an enabled-flag check + relaxed atomic add per event. All
/// operations are thread-safe; concurrent sessions share one registry.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge (e.g. live document count, pool capacity in use).
/// Thread-safe; Add() uses a compare-exchange loop since atomic doubles
/// have no fetch_add before C++20 library support is universal.
class Gauge {
 public:
  void Set(double value) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.store(value, std::memory_order_relaxed);
    }
  }
  void Add(double delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0};
};

/// Histogram of nonnegative integer samples (micros, bytes, row counts)
/// with log-bucketed bounds: values below 16 get one bucket each (exact),
/// larger values are split into 16 sub-buckets per power of two
/// (HdrHistogram-style log-linear buckets). Tracks exact
/// count/sum/min/max; percentiles are approximated by the containing
/// bucket's upper bound.
///
/// Accuracy bound: a bucket covering [L, U] has width U - L + 1 = L/16,
/// so the reported quantile is >= the true quantile and overestimates it
/// by strictly less than 1/16 = 6.25% relative error (documented
/// guarantee: <= 10%; samples below 16 are exact). The unit test
/// HistogramPercentileErrorBoundAcrossDecades asserts this across seven
/// decades of sample magnitudes.
///
/// Record() is thread-safe; a reader racing a writer may observe a
/// sample in count() before it lands in a bucket, which the approximate
/// percentiles tolerate.
class Histogram {
 public:
  /// 16 one-per-value buckets for [0, 16) plus 16 sub-buckets for each of
  /// the 60 remaining octaves of the uint64 range.
  static constexpr size_t kSubBuckets = 16;
  static constexpr size_t kBuckets = kSubBuckets + 60 * kSubBuckets;

  /// Bucket holding `sample` (log-linear mapping, see class comment).
  static size_t BucketIndex(uint64_t sample);
  /// Largest sample bucket `i` can hold (inclusive). Percentiles report
  /// this bound, clamped to the observed max.
  static uint64_t BucketUpperBound(size_t i);

  void Record(uint64_t sample);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  /// Upper bound of the bucket containing the `p`-quantile (p in [0,1]).
  uint64_t ApproxPercentile(double p) const;
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{std::numeric_limits<uint64_t>::max()};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// Named metric registry. Metric names follow the convention
/// `xbench.<layer>.<name>` (e.g. `xbench.pool.hits`). The default registry
/// is process-global and enabled by default; disabling it turns every
/// handle into a branch-only no-op, keeping instrumented hot paths at
/// benchmark-neutral cost. Lookup/creation serializes on an internal
/// mutex; returned handles are lock-free to use.
class MetricsRegistry {
 public:
  MetricsRegistry() : enabled_(std::make_unique<std::atomic<bool>>(true)) {}

  static MetricsRegistry& Default();

  /// Returns the metric named `name`, creating it on first use. The
  /// returned reference stays valid for the registry's lifetime.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  void set_enabled(bool enabled) {
    enabled_->store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_->load(std::memory_order_relaxed); }

  /// Zeroes every metric (handles stay valid).
  void ResetAll();

  size_t metric_count() const {
    MutexLock lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Serializes the current values, deterministically ordered by name.
  void WriteJson(JsonWriter& writer) const;
  std::string ToJson() const;

 private:
  // The OpenMetrics exporter (obs/export.h) walks the metric maps
  // directly under mu_.
  friend std::string ToOpenMetrics(const MetricsRegistry& registry);

  // The enabled flag lives behind a unique_ptr so metric handles can keep
  // a stable pointer to it even if the registry object moves.
  std::unique_ptr<std::atomic<bool>> enabled_;
  // Guards the three maps (not the metric values, which are atomic).
  mutable Mutex mu_{LockRank::kMetrics, "metrics"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      XBENCH_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      XBENCH_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      XBENCH_GUARDED_BY(mu_);
};

}  // namespace xbench::obs

#endif  // XBENCH_OBS_METRICS_H_
