#ifndef XBENCH_OBS_METRICS_H_
#define XBENCH_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace xbench::obs {

class JsonWriter;
class MetricsRegistry;

/// Monotonically increasing counter. Handles are stable for the lifetime
/// of the owning registry, so instrumented code fetches one once and then
/// pays only an enabled-flag check + add per event.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    if (*enabled_) value_ += delta;
  }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  friend class MetricsRegistry;
  explicit Counter(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  uint64_t value_ = 0;
};

/// Last-value gauge (e.g. live document count, pool capacity in use).
class Gauge {
 public:
  void Set(double value) {
    if (*enabled_) value_ = value;
  }
  void Add(double delta) {
    if (*enabled_) value_ += delta;
  }
  double value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  double value_ = 0;
};

/// Histogram of nonnegative integer samples (micros, bytes, row counts)
/// with power-of-two buckets: bucket i counts samples whose bit width is i
/// (0 lands in bucket 0). Tracks exact count/sum/min/max; percentiles are
/// approximated by each bucket's upper bound.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t sample);
  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }
  /// Upper bound of the bucket containing the `p`-quantile (p in [0,1]).
  uint64_t ApproxPercentile(double p) const;
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }
  void Reset();

 private:
  friend class MetricsRegistry;
  explicit Histogram(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_ = 0;
  std::array<uint64_t, kBuckets> buckets_{};
};

/// Named metric registry. Metric names follow the convention
/// `xbench.<layer>.<name>` (e.g. `xbench.pool.hits`). The default registry
/// is process-global and enabled by default; disabling it turns every
/// handle into a branch-only no-op, keeping instrumented hot paths at
/// benchmark-neutral cost.
class MetricsRegistry {
 public:
  MetricsRegistry() : enabled_(std::make_unique<bool>(true)) {}

  static MetricsRegistry& Default();

  /// Returns the metric named `name`, creating it on first use. The
  /// returned reference stays valid for the registry's lifetime.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  void set_enabled(bool enabled) { *enabled_ = enabled; }
  bool enabled() const { return *enabled_; }

  /// Zeroes every metric (handles stay valid).
  void ResetAll();

  size_t metric_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Serializes the current values, deterministically ordered by name.
  void WriteJson(JsonWriter& writer) const;
  std::string ToJson() const;

 private:
  // The enabled flag lives behind a unique_ptr so metric handles can keep
  // a stable pointer to it even if the registry object moves.
  std::unique_ptr<bool> enabled_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace xbench::obs

#endif  // XBENCH_OBS_METRICS_H_
