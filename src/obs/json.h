#ifndef XBENCH_OBS_JSON_H_
#define XBENCH_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xbench::obs {

/// Minimal streaming JSON writer used for the machine-readable run
/// reports (BENCH_RESULTS-style files) and Chrome trace dumps. Commas are
/// inserted automatically; the caller is responsible for balancing
/// Begin*/End* calls and pairing every value inside an object with a Key.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void Separate();

  std::string out_;
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

/// Appends the JSON string escape of `text` (without surrounding quotes).
void JsonEscape(std::string_view text, std::string& out);

/// Checks that `text` is exactly one well-formed JSON value (objects,
/// arrays, strings with escapes, numbers, true/false/null). Used by tests
/// and `tools/json_check` to validate emitted reports and traces.
Status ValidateJson(std::string_view text);

/// A parsed JSON value tree (see ParseJson). Object members keep source
/// order; lookup is linear — the run reports this is built for are small.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_bool() const { return kind == Kind::kBool; }

  /// First member named `key`; null when absent or this is not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses `text` as exactly one JSON value, decoding string escapes
/// (\uXXXX becomes UTF-8). Accepts exactly what ValidateJson accepts.
/// Used by `tools/json_check --schema report` to structurally validate
/// the driver's run reports.
Result<JsonValue> ParseJson(std::string_view text);

/// Writes `content` to `path`, replacing any existing file.
Status WriteFile(const std::string& path, std::string_view content);

/// Reads the whole file at `path`.
Result<std::string> ReadFile(const std::string& path);

}  // namespace xbench::obs

#endif  // XBENCH_OBS_JSON_H_
