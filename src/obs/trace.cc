#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>

#include "obs/json.h"

namespace xbench::obs {

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Clear() {
  MutexLock lock(mu_);
  events_.clear();
  last_ticks_ = 0;
  depth_ = 0;
}

uint64_t Tracer::NowTicksLocked() {
  const VirtualClock* clock = clock_.load(std::memory_order_relaxed);
  const uint64_t virtual_ticks =
      clock == nullptr ? 0 : clock->ElapsedMicros() * kTicksPerMicro;
  last_ticks_ = virtual_ticks > last_ticks_ ? virtual_ticks : last_ticks_ + 1;
  return last_ticks_;
}

uint64_t Tracer::NowTicks() {
  MutexLock lock(mu_);
  return NowTicksLocked();
}

void Tracer::BeginSpan(std::string name) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  ++depth_;
  events_.push_back(
      {TraceEvent::Phase::kBegin, std::move(name), NowTicksLocked(), depth_});
}

void Tracer::EndSpan() {
  MutexLock lock(mu_);
  if (depth_ == 0) return;  // unbalanced EndSpan; ignore
  events_.push_back({TraceEvent::Phase::kEnd, std::string(), NowTicksLocked(),
                     depth_});
  --depth_;
}

std::string Tracer::ToChromeJson() const {
  const std::vector<TraceEvent> snapshot = events();
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("displayTimeUnit").String("ms");
  writer.Key("traceEvents").BeginArray();
  for (const TraceEvent& event : snapshot) {
    writer.BeginObject();
    if (event.phase == TraceEvent::Phase::kBegin) {
      writer.Key("name").String(event.name);
      writer.Key("ph").String("B");
    } else {
      writer.Key("ph").String("E");
    }
    writer.Key("cat").String("xbench");
    writer.Key("ts").Uint(event.ts);
    writer.Key("pid").Uint(1);
    writer.Key("tid").Uint(1);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.TakeString();
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  return WriteFile(path, ToChromeJson());
}

EnvTraceSession::EnvTraceSession(Tracer& tracer) : tracer_(&tracer) {
  const char* path = std::getenv("XBENCH_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  path_ = path;
  tracer_->Clear();
  tracer_->Enable();
}

EnvTraceSession::~EnvTraceSession() {
  if (path_.empty()) return;
  tracer_->Disable();
  Status status = tracer_->WriteChromeJson(path_);
  if (!status.ok()) {
    std::fprintf(stderr, "XBENCH_TRACE: %s\n", status.ToString().c_str());
  }
}

}  // namespace xbench::obs
