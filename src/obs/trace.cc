#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>

#include "obs/json.h"

namespace xbench::obs {

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Clear() {
  MutexLock lock(mu_);
  events_.clear();
  last_ticks_ = 0;
  lane_ids_.clear();
  lanes_.clear();
}

size_t Tracer::LaneForThisThreadLocked() {
  const std::thread::id self = std::this_thread::get_id();
  auto it = lane_ids_.find(self);
  if (it == lane_ids_.end()) {
    it = lane_ids_.emplace(self, lanes_.size()).first;
    lanes_.emplace_back();
  }
  return it->second;
}

uint64_t Tracer::NowTicksLocked() {
  const VirtualClock* clock = clock_.load(std::memory_order_relaxed);
  const uint64_t virtual_ticks =
      clock == nullptr ? 0 : clock->ElapsedMicros() * kTicksPerMicro;
  last_ticks_ = virtual_ticks > last_ticks_ ? virtual_ticks : last_ticks_ + 1;
  return last_ticks_;
}

uint64_t Tracer::NowTicks() {
  MutexLock lock(mu_);
  return NowTicksLocked();
}

void Tracer::BeginSpan(std::string name) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  const size_t lane = LaneForThisThreadLocked();
  ++lanes_[lane].depth;
  events_.push_back({TraceEvent::Phase::kBegin, std::move(name),
                     NowTicksLocked(), lanes_[lane].depth,
                     static_cast<uint32_t>(lane + 1)});
}

void Tracer::EndSpan() {
  MutexLock lock(mu_);
  const size_t lane = LaneForThisThreadLocked();
  if (lanes_[lane].depth == 0) return;  // unbalanced EndSpan; ignore
  events_.push_back({TraceEvent::Phase::kEnd, std::string(), NowTicksLocked(),
                     lanes_[lane].depth, static_cast<uint32_t>(lane + 1)});
  --lanes_[lane].depth;
}

void Tracer::SetCurrentThreadName(std::string name) {
  MutexLock lock(mu_);
  lanes_[LaneForThisThreadLocked()].name = std::move(name);
}

std::string Tracer::ToChromeJson() const {
  std::vector<TraceEvent> snapshot;
  std::vector<LaneState> lanes;
  {
    MutexLock lock(mu_);
    snapshot = events_;
    lanes = lanes_;
  }
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("displayTimeUnit").String("ms");
  writer.Key("traceEvents").BeginArray();
  for (size_t i = 0; i < lanes.size(); ++i) {
    if (lanes[i].name.empty()) continue;
    writer.BeginObject();
    writer.Key("name").String("thread_name");
    writer.Key("ph").String("M");
    writer.Key("pid").Uint(1);
    writer.Key("tid").Uint(i + 1);
    writer.Key("args").BeginObject();
    writer.Key("name").String(lanes[i].name);
    writer.EndObject();
    writer.EndObject();
  }
  for (const TraceEvent& event : snapshot) {
    writer.BeginObject();
    if (event.phase == TraceEvent::Phase::kBegin) {
      writer.Key("name").String(event.name);
      writer.Key("ph").String("B");
    } else {
      writer.Key("ph").String("E");
    }
    writer.Key("cat").String("xbench");
    writer.Key("ts").Uint(event.ts);
    writer.Key("pid").Uint(1);
    writer.Key("tid").Uint(event.lane);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.TakeString();
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  return WriteFile(path, ToChromeJson());
}

EnvTraceSession::EnvTraceSession(Tracer& tracer) : tracer_(&tracer) {
  const char* path = std::getenv("XBENCH_TRACE_OUT");
  if (path == nullptr || path[0] == '\0') path = std::getenv("XBENCH_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  path_ = path;
  tracer_->Clear();
  tracer_->Enable();
}

EnvTraceSession::~EnvTraceSession() {
  if (path_.empty()) return;
  tracer_->Disable();
  Status status = tracer_->WriteChromeJson(path_);
  if (!status.ok()) {
    std::fprintf(stderr, "XBENCH_TRACE_OUT: %s\n", status.ToString().c_str());
  }
}

}  // namespace xbench::obs
