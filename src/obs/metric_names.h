#ifndef XBENCH_OBS_METRIC_NAMES_H_
#define XBENCH_OBS_METRIC_NAMES_H_

/// Central registry of every `xbench.`-prefixed metric name (and name
/// prefix) the system emits. `tools/xbench_lint` enforces that any
/// `"xbench.…"` string literal in src/ or tools/ appears here verbatim,
/// so the full metric namespace is readable in one place and a typo'd
/// counter name fails the repo lint instead of silently splitting a
/// series. Names ending in '.' are prefixes completed at runtime
/// (per-diagnostic / per-operation suffixes).
///
/// Call sites keep passing the literal to MetricsRegistry::GetCounter —
/// these constants exist as the declaration of record (and for call
/// sites that prefer a symbol). Scratch names under `xbench.test.` are
/// exempt from registration.

namespace xbench::obs::metric_names {

// Static query analysis (DESIGN.md §7).
inline constexpr char kAnalysisDiagPrefix[] = "xbench.analysis.diag.";
inline constexpr char kAnalysisErrors[] = "xbench.analysis.errors";
inline constexpr char kAnalysisGuidedEvalDisabled[] =
    "xbench.analysis.guided_eval_disabled";
inline constexpr char kAnalysisQueries[] = "xbench.analysis.queries";
inline constexpr char kAnalysisStepsResolved[] =
    "xbench.analysis.steps_resolved";
inline constexpr char kAnalysisWarnings[] = "xbench.analysis.warnings";

// Multi-client throughput driver (DESIGN.md §9).
inline constexpr char kConcurrencyPrefix[] = "xbench.concurrency.";
inline constexpr char kConcurrencyHashMismatches[] =
    "xbench.concurrency.hash_mismatches";
inline constexpr char kConcurrencyMaxSpeedup[] =
    "xbench.concurrency.max_speedup";
inline constexpr char kConcurrencyOps[] = "xbench.concurrency.ops";

// Simulated disk.
inline constexpr char kDiskBytesRead[] = "xbench.disk.bytes_read";
inline constexpr char kDiskBytesWritten[] = "xbench.disk.bytes_written";
inline constexpr char kDiskPageReads[] = "xbench.disk.page_reads";
inline constexpr char kDiskPageWrites[] = "xbench.disk.page_writes";

// Engine load paths.
inline constexpr char kEngineDocsLoaded[] = "xbench.engine.docs_loaded";
inline constexpr char kEngineRowsShredded[] = "xbench.engine.rows_shredded";

// Morsel-driven execution (DESIGN.md §12).
inline constexpr char kExecMorsels[] = "xbench.exec.morsels";
inline constexpr char kExecParallelRegions[] = "xbench.exec.parallel_regions";
inline constexpr char kExecWorkers[] = "xbench.exec.workers";

// Lock-rank enforcement (DESIGN.md §9).
inline constexpr char kLockAcquires[] = "xbench.lock.acquires";
inline constexpr char kLockViolations[] = "xbench.lock.violations";

// Native engine.
inline constexpr char kNativeDocsMaterialized[] =
    "xbench.native.docs_materialized";

// Compile-then-execute pipeline (DESIGN.md §8).
inline constexpr char kPlanAstCacheHits[] = "xbench.plan.ast_cache_hits";
inline constexpr char kPlanAstCacheMisses[] = "xbench.plan.ast_cache_misses";
inline constexpr char kPlanCacheHits[] = "xbench.plan.cache_hits";
inline constexpr char kPlanCacheMisses[] = "xbench.plan.cache_misses";
inline constexpr char kPlanCompiles[] = "xbench.plan.compiles";
inline constexpr char kPlanExecutions[] = "xbench.plan.executions";
inline constexpr char kPlanInvalidations[] = "xbench.plan.invalidations";
inline constexpr char kPlanRowsOut[] = "xbench.plan.rows_out";

// Buffer pool.
inline constexpr char kPoolEvictions[] = "xbench.pool.evictions";
inline constexpr char kPoolHits[] = "xbench.pool.hits";
inline constexpr char kPoolMisses[] = "xbench.pool.misses";
inline constexpr char kPoolWritebacks[] = "xbench.pool.writebacks";

// Static plan verification (DESIGN.md §14).
inline constexpr char kVerifyPlans[] = "xbench.verify.plans";
inline constexpr char kVerifyViolationsPrefix[] = "xbench.verify.violations.";
inline constexpr char kVerifyViolations[] = "xbench.verify.violations";

// Interpreter core.
inline constexpr char kXqueryNodesVisited[] = "xbench.xquery.nodes_visited";
inline constexpr char kXqueryOperatorEvals[] = "xbench.xquery.operator_evals";

}  // namespace xbench::obs::metric_names

#endif  // XBENCH_OBS_METRIC_NAMES_H_
