#include "workload/classes.h"

namespace xbench::workload {

using datagen::DbClass;

const std::vector<DbClass>& AllClasses() {
  static const auto* kClasses = new std::vector<DbClass>{
      DbClass::kDcSd, DbClass::kDcMd, DbClass::kTcSd, DbClass::kTcMd};
  return *kClasses;
}

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kSmall:
      return "Small";
    case Scale::kNormal:
      return "Normal";
    case Scale::kLarge:
      return "Large";
  }
  return "?";
}

const std::vector<Scale>& AllScales() {
  static const auto* kScales =
      new std::vector<Scale>{Scale::kSmall, Scale::kNormal, Scale::kLarge};
  return *kScales;
}

std::vector<engines::IndexSpec> Table3Indexes(DbClass db_class) {
  switch (db_class) {
    case DbClass::kTcSd:
      return {{"hw", "hw"}};
    case DbClass::kTcMd:
      return {{"article/@id", "article/@id"}};
    case DbClass::kDcSd:
      return {{"item/@id", "item/@id"},
              {"date_of_release", "date_of_release"}};
    case DbClass::kDcMd:
      return {{"order/@id", "order/@id"}};
  }
  return {};
}

std::string InstanceName(DbClass db_class, Scale scale) {
  std::string name = datagen::DbClassName(db_class);  // e.g. "TC/SD"
  std::string compact;
  for (char c : name) {
    if (c != '/') compact.push_back(c);
  }
  compact.push_back(ScaleName(scale)[0]);
  return compact;
}

}  // namespace xbench::workload
