#include "workload/queries.h"

#include <algorithm>
#include <vector>

#include "datagen/article_generator.h"
#include "datagen/dictionary_generator.h"
#include "datagen/word_pool.h"
#include "tpcw/rows.h"

namespace xbench::workload {

using datagen::DbClass;

const char* QueryName(QueryId id) {
  static const char* kNames[] = {"Q1",  "Q2",  "Q3",  "Q4",  "Q5",
                                 "Q6",  "Q7",  "Q8",  "Q9",  "Q10",
                                 "Q11", "Q12", "Q13", "Q14", "Q15",
                                 "Q16", "Q17", "Q18", "Q19", "Q20"};
  return kNames[static_cast<int>(id)];
}

const char* QueryCategory(QueryId id) {
  switch (id) {
    case QueryId::kQ1:
    case QueryId::kQ2:
      return "Exact match";
    case QueryId::kQ3:
      return "Function application";
    case QueryId::kQ4:
    case QueryId::kQ5:
      return "Ordered access";
    case QueryId::kQ6:
    case QueryId::kQ7:
      return "Quantification";
    case QueryId::kQ8:
    case QueryId::kQ9:
      return "Path expressions";
    case QueryId::kQ10:
    case QueryId::kQ11:
      return "Sorting";
    case QueryId::kQ12:
    case QueryId::kQ13:
      return "Document construction";
    case QueryId::kQ14:
    case QueryId::kQ15:
      return "Irregular data";
    case QueryId::kQ16:
      return "Document retrieval";
    case QueryId::kQ17:
    case QueryId::kQ18:
      return "Text search";
    case QueryId::kQ19:
      return "References and joins";
    case QueryId::kQ20:
      return "Datatype casting";
  }
  return "?";
}

const std::vector<QueryId>& BenchmarkSubset() {
  static const auto* kSubset = new std::vector<QueryId>{
      QueryId::kQ5, QueryId::kQ8, QueryId::kQ12, QueryId::kQ14,
      QueryId::kQ17};
  return *kSubset;
}

QueryParams DeriveParams(DbClass db_class,
                         const datagen::WorkloadSeeds& seeds) {
  QueryParams params;
  datagen::WordPool words;
  params.item_id =
      tpcw::ItemIdString(std::max<int64_t>(1, seeds.item_count / 2));
  params.order_id =
      tpcw::OrderIdString(std::max<int64_t>(1, seeds.order_count / 2));
  params.article_id =
      datagen::ArticleId(std::max<int64_t>(1, seeds.article_count / 2));
  params.headword =
      datagen::DictionaryHeadword(std::max<int64_t>(1, seeds.entry_count / 2));
  params.author = datagen::WellKnownAuthor();
  params.search_word = words.WordAt(30);
  params.keyword1 = words.WordAt(5);
  params.keyword2 = words.WordAt(9);
  params.phrase = words.WordAt(1) + " " + words.WordAt(2);
  if (db_class == DbClass::kTcMd || db_class == DbClass::kTcSd) {
    params.date_lo = "1998-01-01";
    params.date_hi = "2000-12-31";
  } else {
    params.date_lo = "2000-06-01";
    params.date_hi = "2001-09-30";
  }
  params.country = "Country01";
  params.size_threshold = 2500;
  return params;
}

namespace {

/// Replaces each "{key}" in `tmpl` with its value.
std::string Fill(std::string tmpl,
                 std::initializer_list<std::pair<const char*, std::string>>
                     substitutions) {
  for (const auto& [key, value] : substitutions) {
    const std::string pattern = std::string("{") + key + "}";
    size_t pos;
    while ((pos = tmpl.find(pattern)) != std::string::npos) {
      tmpl.replace(pos, pattern.size(), value);
    }
  }
  return tmpl;
}

}  // namespace

std::string XQueryFor(QueryId id, DbClass db_class,
                      const QueryParams& p) {
  switch (id) {
    case QueryId::kQ1:
      if (db_class == DbClass::kDcSd) {
        return Fill(R"(for $i in $input/item[@id = "{item}"] return $i/title)",
                    {{"item", p.item_id}});
      }
      return "";
    case QueryId::kQ2:
      if (db_class == DbClass::kTcMd) {
        return Fill(
            R"(for $a in $input where $a/prolog/author/name = "{author}" return $a/prolog/title)",
            {{"author", p.author}});
      }
      return "";
    case QueryId::kQ3:
      if (db_class == DbClass::kTcSd) {
        return R"(for $loc in distinct-values($input//qloc)
order by $loc
return <group><loc>{$loc}</loc><entries>{count($input//entry[.//qloc = $loc])}</entries></group>)";
      }
      return "";
    case QueryId::kQ4:
      if (db_class == DbClass::kTcMd) {
        return Fill(
            R"(for $a in $input
where $a/prolog/author/name = "{author}"
return data($a/body/sec[heading = "Introduction"]/following-sibling::sec[1]/heading))",
            {{"author", p.author}});
      }
      return "";
    case QueryId::kQ5:
      switch (db_class) {
        case DbClass::kDcMd:
          return Fill(
              R"(($input[self::order][@id = "{order}"]/order_lines/order_line)[1])",
              {{"order", p.order_id}});
        case DbClass::kDcSd:
          return Fill(
              R"(($input/item[@id = "{item}"]/authors/author)[1]/name)",
              {{"item", p.item_id}});
        case DbClass::kTcSd:
          return Fill(R"(($input//entry[hw = "{hw}"]//q)[1])",
                      {{"hw", p.headword}});
        case DbClass::kTcMd:
          return Fill(
              R"(($input[@id = "{article}"]/body/sec)[1]/heading)",
              {{"article", p.article_id}});
      }
      return "";
    case QueryId::kQ6:
      if (db_class == DbClass::kTcMd) {
        return Fill(
            R"(for $a in $input
where some $p in $a//p satisfies (contains-word($p, "{k1}") and contains-word($p, "{k2}"))
return $a/prolog/title)",
            {{"k1", p.keyword1}, {"k2", p.keyword2}});
      }
      return "";
    case QueryId::kQ7:
      if (db_class == DbClass::kDcSd) {
        return Fill(
            R"(for $i in $input/item
where every $c in $i/authors/author/mail_address/country satisfies $c = "{country}"
return $i/title)",
            {{"country", p.country}});
      }
      return "";
    case QueryId::kQ8:
      switch (db_class) {
        case DbClass::kTcSd:
          return Fill(
              R"(for $t in $input//entry[hw = "{hw}"]//qt return data($t))",
              {{"hw", p.headword}});
        case DbClass::kDcMd:
          return Fill(
              R"(for $s in $input[self::order][@id = "{order}"]//ship_type return data($s))",
              {{"order", p.order_id}});
        case DbClass::kDcSd:
          return Fill(
              R"(for $n in $input/item[@id = "{item}"]//first_name return data($n))",
              {{"item", p.item_id}});
        case DbClass::kTcMd:
          return Fill(
              R"(for $k in $input[@id = "{article}"]//keyword return data($k))",
              {{"article", p.article_id}});
      }
      return "";
    case QueryId::kQ9:
      if (db_class == DbClass::kDcMd) {
        return Fill(
            R"(for $s in $input[self::order][@id = "{order}"]//status return data($s))",
            {{"order", p.order_id}});
      }
      return "";
    case QueryId::kQ10:
      if (db_class == DbClass::kDcMd) {
        return Fill(
            R"(for $o in $input[self::order]
where $o/order_date >= "{lo}" and $o/order_date <= "{hi}"
order by $o/shipping/ship_type
return <o><id>{$o/@id}</id><date>{data($o/order_date)}</date><ship>{data($o/shipping/ship_type)}</ship></o>)",
            {{"lo", p.date_lo}, {"hi", p.date_hi}});
      }
      return "";
    case QueryId::kQ11:
      if (db_class == DbClass::kTcSd) {
        return Fill(
            R"(for $q in $input//entry[hw = "{hw}"]//q
order by $q/qd
return <quote><qau>{data($q/qau)}</qau><qd>{data($q/qd)}</qd></quote>)",
            {{"hw", p.headword}});
      }
      return "";
    case QueryId::kQ12:
      switch (db_class) {
        case DbClass::kDcSd:
          return Fill(
              R"(($input/item[@id = "{item}"]/authors/author)[1]/mail_address)",
              {{"item", p.item_id}});
        case DbClass::kDcMd:
          return Fill(
              R"($input[self::order][@id = "{order}"]/shipping/ship_address)",
              {{"order", p.order_id}});
        case DbClass::kTcSd:
          return Fill(R"(($input//entry[hw = "{hw}"]//qp)[1])",
                      {{"hw", p.headword}});
        case DbClass::kTcMd:
          return Fill(R"($input[@id = "{article}"]/prolog/abstract)",
                      {{"article", p.article_id}});
      }
      return "";
    case QueryId::kQ13:
      if (db_class == DbClass::kTcMd) {
        return Fill(
            R"(for $a in $input[@id = "{article}"]
return <result><title>{data($a/prolog/title)}</title><first_author>{data(($a/prolog/author)[1]/name)}</first_author><date>{data($a/prolog/date)}</date>{$a/prolog/abstract}</result>)",
            {{"article", p.article_id}});
      }
      return "";
    case QueryId::kQ14:
      switch (db_class) {
        case DbClass::kDcSd:
          return Fill(
              R"(for $i in $input/item
where $i/date_of_release >= "{lo}" and $i/date_of_release <= "{hi}" and empty($i/publisher/fax_number)
return data($i/publisher/name))",
              {{"lo", p.date_lo}, {"hi", p.date_hi}});
        case DbClass::kDcMd:
          return Fill(
              R"(for $o in $input[self::order]
where $o/order_date >= "{lo}" and $o/order_date <= "{hi}" and (some $l in $o/order_lines/order_line satisfies empty($l/comments))
return $o/@id)",
              {{"lo", p.date_lo}, {"hi", p.date_hi}});
        case DbClass::kTcSd:
          return R"(for $e in $input//entry
where exists($e//q) and empty($e/etym)
return data($e/hw))";
        case DbClass::kTcMd:
          return Fill(
              R"(for $a in $input
where $a/prolog/date >= "{lo}" and $a/prolog/date <= "{hi}" and empty($a/prolog/keywords)
return data($a/prolog/title))",
              {{"lo", p.date_lo}, {"hi", p.date_hi}});
      }
      return "";
    case QueryId::kQ15:
      if (db_class == DbClass::kTcMd) {
        return Fill(
            R"(for $a in $input, $au in $a/prolog/author
where $a/prolog/date >= "{lo}" and $a/prolog/date <= "{hi}" and exists($au/contact) and string-length(($au/contact)[1]) = 0
return $au/name)",
            {{"lo", p.date_lo}, {"hi", p.date_hi}});
      }
      return "";
    case QueryId::kQ16:
      if (db_class == DbClass::kDcMd) {
        return Fill(R"($input[self::order][@id = "{order}"])",
                    {{"order", p.order_id}});
      }
      return "";
    case QueryId::kQ17:
      switch (db_class) {
        case DbClass::kTcSd:
          return Fill(
              R"(for $e in $input//entry
where some $t in $e//qt satisfies contains-word($t, "{word}")
return data($e/hw))",
              {{"word", p.search_word}});
        case DbClass::kTcMd:
          return Fill(
              R"(for $a in $input
where some $p in $a//p satisfies contains-word($p, "{word}")
return data($a/prolog/title))",
              {{"word", p.search_word}});
        case DbClass::kDcSd:
          return Fill(
              R"(for $i in $input/item
where contains-word($i/description, "{word}")
return data($i/title))",
              {{"word", p.search_word}});
        case DbClass::kDcMd:
          return Fill(
              R"(for $o in $input[self::order]
where some $l in $o/order_lines/order_line satisfies contains-word($l/comments, "{word}")
return $o/@id)",
              {{"word", p.search_word}});
      }
      return "";
    case QueryId::kQ18:
      if (db_class == DbClass::kTcMd) {
        return Fill(
            R"(for $a in $input
where some $p in $a//p satisfies contains($p, "{phrase}")
return <hit><title>{data($a/prolog/title)}</title><abstract>{data(($a/prolog/abstract/p)[1])}</abstract></hit>)",
            {{"phrase", p.phrase}});
      }
      return "";
    case QueryId::kQ19:
      if (db_class == DbClass::kDcMd) {
        return Fill(
            R"(for $o in $input[self::order][@id = "{order}"], $c in $input[self::customers]/customer
where $c/@id = $o/customer_id
return <r><name>{concat(data($c/first_name), " ", data($c/last_name))}</name><phone>{data($c/phone)}</phone><status>{data($o/status)}</status></r>)",
            {{"order", p.order_id}});
      }
      return "";
    case QueryId::kQ20:
      if (db_class == DbClass::kDcSd) {
        return Fill(
            R"(for $i in $input/item where number($i/size) > {threshold} return $i/title)",
            {{"threshold", std::to_string(p.size_threshold)}});
      }
      return "";
  }
  return "";
}

std::optional<IndexHint> IndexHintFor(QueryId id, DbClass db_class,
                                      const QueryParams& p) {
  const bool id_lookup = id == QueryId::kQ1 || id == QueryId::kQ5 ||
                         id == QueryId::kQ8 || id == QueryId::kQ9 ||
                         id == QueryId::kQ11 || id == QueryId::kQ12 ||
                         id == QueryId::kQ13 || id == QueryId::kQ16;
  if (!id_lookup) return std::nullopt;
  switch (db_class) {
    case DbClass::kDcSd:
      return IndexHint{"item/@id", p.item_id};
    case DbClass::kDcMd:
      return IndexHint{"order/@id", p.order_id};
    case DbClass::kTcSd:
      return IndexHint{"hw", p.headword};
    case DbClass::kTcMd:
      return IndexHint{"article/@id", p.article_id};
  }
  return std::nullopt;
}

AnswerShape AnswerShapeFor(QueryId id) {
  switch (id) {
    case QueryId::kQ5:
    case QueryId::kQ12:
    case QueryId::kQ13:
    case QueryId::kQ16:
      return AnswerShape::kOrderedFragment;
    case QueryId::kQ3:
    case QueryId::kQ4:
    case QueryId::kQ10:
    case QueryId::kQ11:
      return AnswerShape::kValueList;
    default:
      return AnswerShape::kValueSet;
  }
}

}  // namespace xbench::workload
