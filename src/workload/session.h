#ifndef XBENCH_WORKLOAD_SESSION_H_
#define XBENCH_WORKLOAD_SESSION_H_

#include <cstdint>
#include <string>

#include "datagen/generator.h"
#include "engines/dbms.h"
#include "workload/queries.h"
#include "workload/runner.h"

namespace xbench::workload {

/// Running totals over one session's statements.
struct SessionStats {
  uint64_t queries_run = 0;
  uint64_t failures = 0;
  double cpu_millis = 0;
  double io_millis = 0;
  IoStats io;
};

/// One client's handle onto a shared engine — the unit of concurrency for
/// multi-programming-level runs. A Session owns its query parameters, its
/// per-operator plan statistics and its I/O attribution; any number of
/// sessions may call Run() on the same engine from different threads
/// concurrently and each still reports exact per-statement cpu/io splits
/// (per-thread virtual-I/O attribution, see common/thread_io.h).
///
/// Locking: the native engine takes the collection lock shared inside its
/// query entry points; for the CLOB/shred engines — whose statements span
/// several engine calls — the Session holds the lock shared around the
/// whole statement. Either way mutations (BulkLoad etc.) serialize
/// against in-flight statements, never interleave with them.
///
/// A Session must not migrate between threads mid-statement (per-thread
/// attribution would tear); using one Session from one thread at a time
/// is the intended pattern.
class Session {
 public:
  /// `engine` must outlive the session. `params` become the session's
  /// default parameter set; `name` labels throughput reports.
  Session(engines::XmlDbms& engine, datagen::DbClass db_class,
          QueryParams params, std::string name = "session");

  /// Executes query `id` with the session's parameters.
  ExecutionResult Run(QueryId id, const RunOptions& options = {});

  /// Executes query `id` with one-off parameters.
  ExecutionResult Run(QueryId id, const QueryParams& params,
                      const RunOptions& options = {});

  /// Index DDL, statement-style: delegates to the session's engine, which
  /// serializes DDL against in-flight statements on the collection lock.
  /// Engines reject kinds they cannot host with kUnsupported (only the
  /// native engine serves kPath/kText); the native engine invalidates its
  /// plan cache and bumps its catalog epoch, so statements compiled before
  /// the DDL never run with a stale access-path choice.
  Status CreateIndex(const engines::IndexSpec& spec) {
    return engine_->CreateIndex(spec);
  }
  Status DropIndex(const std::string& name) {
    return engine_->DropIndex(name);
  }
  std::vector<engines::IndexInfo> ListIndexes() const {
    return engine_->ListIndexes();
  }

  engines::XmlDbms& engine() { return *engine_; }
  datagen::DbClass db_class() const { return db_class_; }
  const QueryParams& params() const { return params_; }
  const std::string& name() const { return name_; }

  /// Totals across every Run() so far.
  const SessionStats& stats() const { return stats_; }

 private:
  engines::XmlDbms* engine_;
  datagen::DbClass db_class_;
  QueryParams params_;
  std::string name_;
  SessionStats stats_;
};

}  // namespace xbench::workload

#endif  // XBENCH_WORKLOAD_SESSION_H_
