#include "workload/runner.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "engines/clob_engine.h"
#include "engines/native_engine.h"
#include "engines/shred_engine.h"
#include "workload/classes.h"
#include "workload/relational_plans.h"

namespace xbench::workload {

using engines::EngineKind;

const std::vector<EngineKind>& AllEngines() {
  static const auto* kEngines = new std::vector<EngineKind>{
      EngineKind::kClob, EngineKind::kShredDb2, EngineKind::kShredMsSql,
      EngineKind::kNative};
  return *kEngines;
}

std::unique_ptr<engines::XmlDbms> MakeEngine(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNative:
      return std::make_unique<engines::NativeEngine>();
    case EngineKind::kClob:
      return std::make_unique<engines::ClobEngine>();
    case EngineKind::kShredDb2:
      return std::make_unique<engines::ShredEngine>(EngineKind::kShredDb2);
    case EngineKind::kShredMsSql:
      return std::make_unique<engines::ShredEngine>(EngineKind::kShredMsSql);
  }
  return nullptr;
}

std::vector<engines::LoadDocument> ToLoadDocuments(
    const datagen::GeneratedDatabase& db) {
  std::vector<engines::LoadDocument> docs;
  docs.reserve(db.documents.size());
  for (const datagen::GeneratedDocument& doc : db.documents) {
    docs.push_back({doc.name, doc.text});
  }
  return docs;
}

TimedStatus BulkLoad(engines::XmlDbms& engine,
                     const datagen::GeneratedDatabase& db) {
  TimedStatus timed;
  const double io_before = engine.IoMillis();
  Stopwatch watch;
  timed.status = engine.BulkLoad(db.db_class, ToLoadDocuments(db));
  timed.cpu_millis = watch.ElapsedMillis();
  timed.io_millis = engine.IoMillis() - io_before;
  return timed;
}

Status CreateTable3Indexes(engines::XmlDbms& engine,
                           datagen::DbClass db_class) {
  for (const engines::IndexSpec& spec : Table3Indexes(db_class)) {
    Status status = engine.CreateIndex(spec);
    // Some engines cannot index paths outside their side tables; that is
    // a configuration fact, not an error (the paper also only creates
    // indexes "that can be implemented for all systems" best-effort).
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      return status;
    }
  }
  return Status::Ok();
}

namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

ExecutionResult RunNative(engines::NativeEngine& engine, QueryId id,
                          datagen::DbClass db_class,
                          const QueryParams& params) {
  ExecutionResult result;
  const std::string xquery = XQueryFor(id, db_class, params);
  if (xquery.empty()) {
    result.status = Status::Unsupported(
        std::string(QueryName(id)) + " is not defined for " +
        datagen::DbClassName(db_class));
    return result;
  }
  auto hint = IndexHintFor(id, db_class, params);
  auto query_result = hint.has_value()
                          ? engine.QueryWithIndex(hint->index_name,
                                                  hint->value, xquery)
                          : engine.Query(xquery);
  if (!query_result.ok()) {
    result.status = query_result.status();
    return result;
  }
  result.lines = SplitLines(query_result->ToText());
  return result;
}

}  // namespace

ExecutionResult RunQuery(engines::XmlDbms& engine, QueryId id,
                         datagen::DbClass db_class, const QueryParams& params,
                         bool cold) {
  if (cold) engine.ColdRestart();
  ExecutionResult result;
  const double io_before = engine.IoMillis();
  Stopwatch watch;
  switch (engine.kind()) {
    case EngineKind::kNative:
      result = RunNative(static_cast<engines::NativeEngine&>(engine), id,
                         db_class, params);
      break;
    case EngineKind::kClob: {
      auto lines = RunClobQuery(static_cast<engines::ClobEngine&>(engine), id,
                                params);
      if (lines.ok()) {
        result.lines = std::move(lines).value();
      } else {
        result.status = lines.status();
      }
      break;
    }
    case EngineKind::kShredDb2:
    case EngineKind::kShredMsSql: {
      auto lines = RunShredQuery(static_cast<engines::ShredEngine&>(engine),
                                 id, params);
      if (lines.ok()) {
        result.lines = std::move(lines).value();
      } else {
        result.status = lines.status();
      }
      break;
    }
  }
  result.cpu_millis = watch.ElapsedMillis();
  result.io_millis = engine.IoMillis() - io_before;
  return result;
}

std::vector<std::string> CanonicalizeAnswer(QueryId id,
                                            std::vector<std::string> lines) {
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (AnswerShapeFor(id) == AnswerShape::kValueSet) {
    std::sort(lines.begin(), lines.end());
  }
  return lines;
}

}  // namespace xbench::workload
