#include "workload/runner.h"

#include <algorithm>

#include "analysis/analyzer.h"
#include "analysis/class_schemas.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_io.h"
#include "engines/native_engine.h"
#include "engines/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/classes.h"
#include "workload/session.h"
#include "xquery/parser.h"

namespace xbench::workload {

using engines::EngineKind;

const std::vector<EngineKind>& AllEngines() {
  static const auto* kEngines = new std::vector<EngineKind>{
      EngineKind::kClob, EngineKind::kShredDb2, EngineKind::kShredMsSql,
      EngineKind::kNative};
  return *kEngines;
}

std::unique_ptr<engines::XmlDbms> MakeEngine(EngineKind kind) {
  auto created = engines::EngineRegistry::Default().Create(
      engines::EngineKindRegistryName(kind));
  return created.ok() ? std::move(created).value() : nullptr;
}

std::vector<engines::LoadDocument> ToLoadDocuments(
    const datagen::GeneratedDatabase& db) {
  std::vector<engines::LoadDocument> docs;
  docs.reserve(db.documents.size());
  for (const datagen::GeneratedDocument& doc : db.documents) {
    docs.push_back({doc.name, doc.text});
  }
  return docs;
}

IoStats CaptureIoStats(const engines::XmlDbms& engine) {
  const storage::PoolCounters pool = engine.pool().counters();
  const storage::SimulatedDisk& disk = engine.disk();
  IoStats stats;
  stats.pool_hits = pool.hits;
  stats.pool_misses = pool.misses;
  stats.pool_evictions = pool.evictions;
  stats.pool_writebacks = pool.writebacks;
  stats.disk_page_reads = disk.reads();
  stats.disk_page_writes = disk.writes();
  stats.disk_bytes_read = disk.bytes_read();
  stats.disk_bytes_written = disk.bytes_written();
  return stats;
}

IoStats ThreadIoSnapshot() {
  const ThreadIoCounters& mine = ThisThreadIo();
  IoStats stats;
  stats.pool_hits = mine.pool_hits;
  stats.pool_misses = mine.pool_misses;
  stats.pool_evictions = mine.pool_evictions;
  stats.pool_writebacks = mine.pool_writebacks;
  stats.disk_page_reads = mine.disk_page_reads;
  stats.disk_page_writes = mine.disk_page_writes;
  stats.disk_bytes_read = mine.disk_bytes_read;
  stats.disk_bytes_written = mine.disk_bytes_written;
  return stats;
}

double ThreadIoMillis() {
  return static_cast<double>(ThisThreadIo().io_micros) / 1000.0;
}

IoStats IoStatsDelta(const IoStats& before, const IoStats& after) {
  IoStats delta;
  delta.pool_hits = after.pool_hits - before.pool_hits;
  delta.pool_misses = after.pool_misses - before.pool_misses;
  delta.pool_evictions = after.pool_evictions - before.pool_evictions;
  delta.pool_writebacks = after.pool_writebacks - before.pool_writebacks;
  delta.disk_page_reads = after.disk_page_reads - before.disk_page_reads;
  delta.disk_page_writes = after.disk_page_writes - before.disk_page_writes;
  delta.disk_bytes_read = after.disk_bytes_read - before.disk_bytes_read;
  delta.disk_bytes_written =
      after.disk_bytes_written - before.disk_bytes_written;
  return delta;
}

TimedStatus BulkLoad(engines::XmlDbms& engine,
                     const datagen::GeneratedDatabase& db) {
  TimedStatus timed;
  obs::ScopedClockSource clock_scope(engine.disk().clock());
  obs::Tracer& tracer = obs::Tracer::Default();
  obs::ScopedSpan span(
      tracer.enabled()
          ? "bulkload." + std::string(datagen::DbClassName(db.db_class)) +
                "." + engine.name()
          : std::string(),
      tracer);
  // Loads are attributed per-thread like queries, so a load on one session
  // and queries on others keep disjoint, exact deltas.
  const IoStats io_before = ThreadIoSnapshot();
  const double io_millis_before = ThreadIoMillis();
  Stopwatch watch;
  timed.status = engine.BulkLoad(db.db_class, ToLoadDocuments(db));
  timed.cpu_millis = watch.ElapsedMillis();
  timed.io_millis = ThreadIoMillis() - io_millis_before;
  timed.io = IoStatsDelta(io_before, ThreadIoSnapshot());
  if (timed.status.ok() && engine.kind() == EngineKind::kNative) {
    // Guided descendant evaluation (Step::expansions) is sound only when
    // the loaded collection conforms to the canonical schema the analyzer
    // resolved the chains from. Benchmark databases are generated with
    // user-configured size/seed, so conformance is checked per load — over
    // the already-materialized DOMs, outside the timed region.
    const Status conforms = analysis::ValidateDatabaseForGuidedEval(db);
    if (!conforms.ok()) {
      obs::MetricsRegistry::Default()
          .GetCounter("xbench.analysis.guided_eval_disabled")
          .Increment();
    }
    static_cast<engines::NativeEngine&>(engine).set_guided_eval_enabled(
        conforms.ok());
  }
  return timed;
}

Status CreateTable3Indexes(engines::XmlDbms& engine,
                           datagen::DbClass db_class) {
  for (const engines::IndexSpec& spec : Table3Indexes(db_class)) {
    Status status = engine.CreateIndex(spec);
    // Some engines cannot index paths outside their side tables; that is
    // a configuration fact, not an error (the paper also only creates
    // indexes "that can be implemented for all systems" best-effort).
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      return status;
    }
  }
  return Status::Ok();
}

Result<xquery::ExprPtr> AnalyzeForClass(const std::string& xquery,
                                        datagen::DbClass db_class) {
  XBENCH_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                          AnalyzeForClassFull(xquery, db_class));
  return std::move(analyzed.ast);
}

Result<AnalyzedQuery> AnalyzeForClassFull(const std::string& xquery,
                                          datagen::DbClass db_class,
                                          double* parse_millis,
                                          double* analyze_millis) {
  AnalyzedQuery analyzed;
  Stopwatch parse_watch;
  XBENCH_ASSIGN_OR_RETURN(analyzed.ast, xquery::ParseQuery(xquery));
  if (parse_millis != nullptr) *parse_millis = parse_watch.ElapsedMillis();
  const analysis::ClassSchema& schema =
      analysis::CanonicalClassSchema(db_class);
  Stopwatch analyze_watch;
  XBENCH_RETURN_IF_ERROR(analysis::AnalyzeQuery(*analyzed.ast, schema.dtd,
                                                &schema.summary, schema.roots,
                                                &analyzed.report));
  if (analyze_millis != nullptr) {
    *analyze_millis = analyze_watch.ElapsedMillis();
  }
  return analyzed;
}

ExecutionResult RunQuery(engines::XmlDbms& engine, QueryId id,
                         datagen::DbClass db_class, const QueryParams& params,
                         const RunOptions& options) {
  Session session(engine, db_class, params, "one-shot");
  return session.Run(id, options);
}

std::vector<std::string> CanonicalizeAnswer(QueryId id,
                                            std::vector<std::string> lines) {
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (AnswerShapeFor(id) == AnswerShape::kValueSet) {
    std::sort(lines.begin(), lines.end());
  }
  return lines;
}

uint64_t AnswerHash(const std::vector<std::string>& lines) {
  uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  auto mix = [&hash](char c) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV-1a prime
  };
  for (const std::string& line : lines) {
    for (char c : line) mix(c);
    mix('\n');
  }
  return hash;
}

}  // namespace xbench::workload
