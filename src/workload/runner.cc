#include "workload/runner.h"

#include <algorithm>

#include "analysis/analyzer.h"
#include "analysis/class_schemas.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "engines/clob_engine.h"
#include "engines/native_engine.h"
#include "engines/shred_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/classes.h"
#include "workload/relational_plans.h"
#include "xquery/parser.h"
#include "xquery/plan/cache.h"

namespace xbench::workload {

using engines::EngineKind;

const std::vector<EngineKind>& AllEngines() {
  static const auto* kEngines = new std::vector<EngineKind>{
      EngineKind::kClob, EngineKind::kShredDb2, EngineKind::kShredMsSql,
      EngineKind::kNative};
  return *kEngines;
}

std::unique_ptr<engines::XmlDbms> MakeEngine(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNative:
      return std::make_unique<engines::NativeEngine>();
    case EngineKind::kClob:
      return std::make_unique<engines::ClobEngine>();
    case EngineKind::kShredDb2:
      return std::make_unique<engines::ShredEngine>(EngineKind::kShredDb2);
    case EngineKind::kShredMsSql:
      return std::make_unique<engines::ShredEngine>(EngineKind::kShredMsSql);
  }
  return nullptr;
}

std::vector<engines::LoadDocument> ToLoadDocuments(
    const datagen::GeneratedDatabase& db) {
  std::vector<engines::LoadDocument> docs;
  docs.reserve(db.documents.size());
  for (const datagen::GeneratedDocument& doc : db.documents) {
    docs.push_back({doc.name, doc.text});
  }
  return docs;
}

IoStats CaptureIoStats(const engines::XmlDbms& engine) {
  const storage::PoolCounters pool = engine.pool().counters();
  const storage::SimulatedDisk& disk = engine.disk();
  IoStats stats;
  stats.pool_hits = pool.hits;
  stats.pool_misses = pool.misses;
  stats.pool_evictions = pool.evictions;
  stats.pool_writebacks = pool.writebacks;
  stats.disk_page_reads = disk.reads();
  stats.disk_page_writes = disk.writes();
  stats.disk_bytes_read = disk.bytes_read();
  stats.disk_bytes_written = disk.bytes_written();
  return stats;
}

IoStats IoStatsDelta(const IoStats& before, const IoStats& after) {
  IoStats delta;
  delta.pool_hits = after.pool_hits - before.pool_hits;
  delta.pool_misses = after.pool_misses - before.pool_misses;
  delta.pool_evictions = after.pool_evictions - before.pool_evictions;
  delta.pool_writebacks = after.pool_writebacks - before.pool_writebacks;
  delta.disk_page_reads = after.disk_page_reads - before.disk_page_reads;
  delta.disk_page_writes = after.disk_page_writes - before.disk_page_writes;
  delta.disk_bytes_read = after.disk_bytes_read - before.disk_bytes_read;
  delta.disk_bytes_written =
      after.disk_bytes_written - before.disk_bytes_written;
  return delta;
}

TimedStatus BulkLoad(engines::XmlDbms& engine,
                     const datagen::GeneratedDatabase& db) {
  TimedStatus timed;
  obs::ScopedClockSource clock_scope(engine.disk().clock());
  obs::Tracer& tracer = obs::Tracer::Default();
  obs::ScopedSpan span(
      tracer.enabled()
          ? "bulkload." + std::string(datagen::DbClassName(db.db_class)) +
                "." + engine.name()
          : std::string(),
      tracer);
  const IoStats io_before = CaptureIoStats(engine);
  const double io_millis_before = engine.IoMillis();
  Stopwatch watch;
  timed.status = engine.BulkLoad(db.db_class, ToLoadDocuments(db));
  timed.cpu_millis = watch.ElapsedMillis();
  timed.io_millis = engine.IoMillis() - io_millis_before;
  timed.io = IoStatsDelta(io_before, CaptureIoStats(engine));
  if (timed.status.ok() && engine.kind() == EngineKind::kNative) {
    // Guided descendant evaluation (Step::expansions) is sound only when
    // the loaded collection conforms to the canonical schema the analyzer
    // resolved the chains from. Benchmark databases are generated with
    // user-configured size/seed, so conformance is checked per load — over
    // the already-materialized DOMs, outside the timed region.
    const Status conforms = analysis::ValidateDatabaseForGuidedEval(db);
    if (!conforms.ok()) {
      obs::MetricsRegistry::Default()
          .GetCounter("xbench.analysis.guided_eval_disabled")
          .Increment();
    }
    static_cast<engines::NativeEngine&>(engine).set_guided_eval_enabled(
        conforms.ok());
  }
  return timed;
}

Status CreateTable3Indexes(engines::XmlDbms& engine,
                           datagen::DbClass db_class) {
  for (const engines::IndexSpec& spec : Table3Indexes(db_class)) {
    Status status = engine.CreateIndex(spec);
    // Some engines cannot index paths outside their side tables; that is
    // a configuration fact, not an error (the paper also only creates
    // indexes "that can be implemented for all systems" best-effort).
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      return status;
    }
  }
  return Status::Ok();
}

namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

ExecutionResult RunNative(engines::NativeEngine& engine, QueryId id,
                          datagen::DbClass db_class,
                          const QueryParams& params,
                          const xquery::plan::CompiledQuery& compiled) {
  ExecutionResult result;
  auto hint = IndexHintFor(id, db_class, params);
  auto query_result =
      hint.has_value() ? engine.ExecutePlanWithIndex(hint->index_name,
                                                     hint->value, compiled)
                       : engine.ExecutePlan(compiled);
  if (!query_result.ok()) {
    result.status = query_result.status();
    return result;
  }
  result.lines = SplitLines(query_result->ToText());
  result.compiled = true;
  result.plan_stats = engine.last_plan_stats();
  return result;
}

/// Compile phase for the native engine, done before the stopwatch starts:
/// parse, schema analysis, and plan compilation are the DBMS's
/// statement-prepare work, so the timed region covers plan execution only
/// (the paper times query execution, not compilation). Compiled plans are
/// cached in the engine keyed by (query, class, engine, guided flag), so a
/// repeat run skips the whole phase. Query parameters are derived
/// deterministically from the database's seeds and every mutation
/// invalidates the cache, so a cached plan's embedded parameter values
/// always match the collection it runs over.
Result<std::shared_ptr<const xquery::plan::CompiledQuery>> PrepareNativePlan(
    engines::NativeEngine& engine, QueryId id, datagen::DbClass db_class,
    const QueryParams& params, bool* cache_hit) {
  const bool guided = engine.guided_eval_enabled();
  const xquery::plan::PlanCacheKey key{
      static_cast<int>(id), static_cast<int>(db_class),
      static_cast<int>(EngineKind::kNative), guided};
  if (auto cached = engine.plan_cache().Lookup(key)) {
    *cache_hit = true;
    return cached;
  }
  *cache_hit = false;
  const std::string xquery = XQueryFor(id, db_class, params);
  if (xquery.empty()) {
    return Status::Unsupported(std::string(QueryName(id)) +
                               " is not defined for " +
                               datagen::DbClassName(db_class));
  }
  XBENCH_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                          AnalyzeForClassFull(xquery, db_class));
  xquery::plan::PlannerOptions options;
  options.guided = guided;
  // The canonical schema's statistics describe the sample database, not
  // the engine's actual collection, so cardinality-zero pruning stays off
  // when answers count.
  options.trust_statistics = false;
  XBENCH_ASSIGN_OR_RETURN(
      std::shared_ptr<const xquery::plan::CompiledQuery> compiled,
      xquery::plan::Compile(std::move(analyzed.ast),
                            &analyzed.report.annotations, options));
  engine.plan_cache().Insert(key, compiled);
  return compiled;
}

}  // namespace

Result<xquery::ExprPtr> AnalyzeForClass(const std::string& xquery,
                                        datagen::DbClass db_class) {
  XBENCH_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                          AnalyzeForClassFull(xquery, db_class));
  return std::move(analyzed.ast);
}

Result<AnalyzedQuery> AnalyzeForClassFull(const std::string& xquery,
                                          datagen::DbClass db_class) {
  AnalyzedQuery analyzed;
  XBENCH_ASSIGN_OR_RETURN(analyzed.ast, xquery::ParseQuery(xquery));
  const analysis::ClassSchema& schema =
      analysis::CanonicalClassSchema(db_class);
  XBENCH_RETURN_IF_ERROR(analysis::AnalyzeQuery(*analyzed.ast, schema.dtd,
                                                &schema.summary, schema.roots,
                                                &analyzed.report));
  return analyzed;
}

ExecutionResult RunQuery(engines::XmlDbms& engine, QueryId id,
                         datagen::DbClass db_class, const QueryParams& params,
                         bool cold) {
  if (cold) engine.ColdRestart();  // also resets pool counters
  // Native-path compile phase (parse + schema analysis + plan build, or a
  // plan-cache hit), outside the timed region. Analysis failures are hard
  // errors: a canned query that names an element the class DTD cannot
  // produce must not report a (fast, empty) success. ColdRestart above does
  // not touch the plan cache, so cold runs still hit compiled plans — the
  // statement cache survives a buffer-pool flush.
  std::shared_ptr<const xquery::plan::CompiledQuery> native_plan;
  bool native_cache_hit = false;
  if (engine.kind() == EngineKind::kNative) {
    auto prepared =
        PrepareNativePlan(static_cast<engines::NativeEngine&>(engine), id,
                          db_class, params, &native_cache_hit);
    if (!prepared.ok()) {
      ExecutionResult failed;
      failed.status = prepared.status();
      return failed;
    }
    native_plan = std::move(prepared).value();
  }
  obs::ScopedClockSource clock_scope(engine.disk().clock());
  obs::Tracer& tracer = obs::Tracer::Default();
  obs::ScopedSpan span(tracer.enabled()
                           ? std::string("query.") + QueryName(id) + "." +
                                 engine.name()
                           : std::string(),
                       tracer);
  ExecutionResult result;
  const IoStats stats_before = CaptureIoStats(engine);
  const double io_before = engine.IoMillis();
  Stopwatch watch;
  switch (engine.kind()) {
    case EngineKind::kNative:
      result = RunNative(static_cast<engines::NativeEngine&>(engine), id,
                         db_class, params, *native_plan);
      result.plan_cache_hit = native_cache_hit;
      break;
    case EngineKind::kClob: {
      auto lines = RunClobQuery(static_cast<engines::ClobEngine&>(engine), id,
                                params);
      if (lines.ok()) {
        result.lines = std::move(lines).value();
      } else {
        result.status = lines.status();
      }
      break;
    }
    case EngineKind::kShredDb2:
    case EngineKind::kShredMsSql: {
      auto lines = RunShredQuery(static_cast<engines::ShredEngine&>(engine),
                                 id, params);
      if (lines.ok()) {
        result.lines = std::move(lines).value();
      } else {
        result.status = lines.status();
      }
      break;
    }
  }
  result.cpu_millis = watch.ElapsedMillis();
  result.io_millis = engine.IoMillis() - io_before;
  result.io = IoStatsDelta(stats_before, CaptureIoStats(engine));
  return result;
}

std::vector<std::string> CanonicalizeAnswer(QueryId id,
                                            std::vector<std::string> lines) {
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (AnswerShapeFor(id) == AnswerShape::kValueSet) {
    std::sort(lines.begin(), lines.end());
  }
  return lines;
}

uint64_t AnswerHash(const std::vector<std::string>& lines) {
  uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  auto mix = [&hash](char c) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV-1a prime
  };
  for (const std::string& line : lines) {
    for (char c : line) mix(c);
    mix('\n');
  }
  return hash;
}

}  // namespace xbench::workload
