#ifndef XBENCH_WORKLOAD_RELATIONAL_PLANS_H_
#define XBENCH_WORKLOAD_RELATIONAL_PLANS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "engines/clob_engine.h"
#include "engines/shred_engine.h"
#include "workload/queries.h"

namespace xbench::workload {

/// Hand-translated physical plans for the benchmark-subset queries against
/// the shredding engines — the equivalent of the paper's manual
/// XQuery-to-SQL translation (§3.2). Returns one answer line per result.
///
/// Known deviations (inherited from the storage architecture, exactly as
/// the paper reports in §3.1.3): reconstruction plans (Q5/Q12) emit the
/// DAD's column order, dropping unmapped optional elements; SQL Server
/// returns NULL for mixed-content columns (qt).
/// Caller (workload::Session) holds the engine's collection lock shared
/// for the whole statement; the plan reads tables()/dad() directly.
Result<std::vector<std::string>> RunShredQuery(engines::ShredEngine& engine,
                                               QueryId id,
                                               const QueryParams& params)
    XBENCH_REQUIRES_SHARED(engine.collection_mu());

/// Plans for the Xcolumn engine: side-table filtering + CLOB fetch +
/// fragment extraction on the intact document. Only the MD classes.
Result<std::vector<std::string>> RunClobQuery(engines::ClobEngine& engine,
                                              QueryId id,
                                              const QueryParams& params)
    XBENCH_REQUIRES_SHARED(engine.collection_mu());

}  // namespace xbench::workload

#endif  // XBENCH_WORKLOAD_RELATIONAL_PLANS_H_
