#ifndef XBENCH_WORKLOAD_QUERIES_H_
#define XBENCH_WORKLOAD_QUERIES_H_

#include <optional>
#include <string>
#include <vector>

#include "datagen/generator.h"

namespace xbench::workload {

/// The 20 XBench query types (paper §2.2).
enum class QueryId {
  kQ1,   // exact match, shallow
  kQ2,   // exact match, deep
  kQ3,   // function application (grouping + count)
  kQ4,   // ordered access, relative
  kQ5,   // ordered access, absolute            [benchmark subset]
  kQ6,   // existential quantification
  kQ7,   // universal quantification
  kQ8,   // path expression, one unknown step   [benchmark subset]
  kQ9,   // path expression, several unknown steps
  kQ10,  // sorting, string type
  kQ11,  // sorting, non-string type
  kQ12,  // document construction, preserving   [benchmark subset]
  kQ13,  // document construction, transforming
  kQ14,  // irregular data: missing elements    [benchmark subset]
  kQ15,  // irregular data: empty values
  kQ16,  // retrieval of an individual document
  kQ17,  // text search, uni-gram               [benchmark subset]
  kQ18,  // text search, phrase
  kQ19,  // references and joins
  kQ20,  // datatype casting
};

const char* QueryName(QueryId id);        // "Q1".."Q20"
const char* QueryCategory(QueryId id);    // "Exact match", ...

/// The five queries the paper's experiments report (Tables 5–9).
const std::vector<QueryId>& BenchmarkSubset();

/// Concrete parameter values for a generated database, derived
/// deterministically from the generator's seeds (the same way real
/// benchmark drivers derive parameters from the data dictionary).
struct QueryParams {
  std::string item_id;      // DC/SD target item
  std::string order_id;     // DC/MD target order
  std::string article_id;   // TC/MD target article
  std::string headword;     // TC/SD target entry headword ("word_K")
  std::string author;       // Y (TC/MD well-known author)
  std::string search_word;  // Q17 uni-gram
  std::string keyword1;     // Q6
  std::string keyword2;     // Q6
  std::string phrase;       // Q18
  std::string date_lo;      // period lower bound (inclusive)
  std::string date_hi;      // period upper bound (inclusive)
  std::string country;      // Q7
  int64_t size_threshold = 2500;  // Q20
};

QueryParams DeriveParams(datagen::DbClass db_class,
                         const datagen::WorkloadSeeds& seeds);

/// The XQuery text of `id` against class `db_class` with `params` bound
/// ($input = collection roots). Empty when the query is not defined for
/// that class. The five benchmark-subset queries are defined for all four
/// classes; the rest for their home class from §2.2.
std::string XQueryFor(QueryId id, datagen::DbClass db_class,
                      const QueryParams& params);

/// Value-index assist for the native engine: (index name, key value) when
/// the query's plan starts from a Table 3 index.
struct IndexHint {
  std::string index_name;
  std::string value;
};
std::optional<IndexHint> IndexHintFor(QueryId id, datagen::DbClass db_class,
                                      const QueryParams& params);

/// How answers may be compared across engines for a (query, class) cell.
enum class AnswerShape {
  kOrderedFragment,  // XML fragment; order and structure significant
  kValueSet,         // unordered bag of atomic values
  kValueList,        // ordered list of atomic values (sorting queries)
};
AnswerShape AnswerShapeFor(QueryId id);

}  // namespace xbench::workload

#endif  // XBENCH_WORKLOAD_QUERIES_H_
