#include "workload/session.h"

#include <utility>

#include "common/stopwatch.h"
#include "common/sync.h"
#include "common/strings.h"
#include "common/thread_io.h"
#include "engines/clob_engine.h"
#include "engines/native_engine.h"
#include "engines/shred_engine.h"
#include "obs/trace.h"
#include "workload/relational_plans.h"
#include "xquery/plan/cache.h"

namespace xbench::workload {

namespace {

using engines::EngineKind;

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

/// Compile phase for the native engine, done before the stopwatch starts:
/// parse, schema analysis, and plan compilation are the DBMS's
/// statement-prepare work, so the timed region covers plan execution only
/// (the paper times query execution, not compilation). Compiled plans are
/// cached in the engine keyed by (query, class, engine, guided flag), so a
/// repeat run skips the whole phase — including a run from another
/// session: the plan cache is the engine's shared statement cache. Query
/// parameters are derived deterministically from the database's seeds and
/// every mutation invalidates the cache, so a cached plan's embedded
/// parameter values always match the collection it runs over.
/// Clamps the caller's compilation options against the engine's current
/// state: guided access paths degrade to full scans while the validation
/// gate is closed (forcing guided must not produce a wrong answer), and
/// cardinality-zero pruning stays off — the canonical schema's statistics
/// describe the sample database, not the engine's actual collection.
xquery::plan::CompilationOptions ClampForEngine(
    const engines::NativeEngine& engine,
    xquery::plan::CompilationOptions options) {
  if (!engine.guided_eval_enabled()) {
    options.access_path.allow_guided = false;
    if (options.access_path.mode ==
        xquery::plan::AccessPathMode::kForceGuided) {
      options.access_path.mode = xquery::plan::AccessPathMode::kForceScan;
    }
  }
  options.cost_model.trust_statistics = false;
  if (options.parallelism.max_intra < 1) options.parallelism.max_intra = 1;
  return options;
}

Result<std::shared_ptr<const xquery::plan::CompiledQuery>> PrepareNativePlan(
    engines::NativeEngine& engine, QueryId id, datagen::DbClass db_class,
    const QueryParams& params,
    const xquery::plan::CompilationOptions& requested, bool* cache_hit,
    QueryProfile* profile) {
  const xquery::plan::CompilationOptions options =
      ClampForEngine(engine, requested);
  const xquery::plan::AccessPathPolicy& policy = options.access_path;
  const bool guided =
      policy.mode == xquery::plan::AccessPathMode::kForceGuided ||
      (policy.mode != xquery::plan::AccessPathMode::kForceScan &&
       policy.allow_guided);
  // Snapshot the planner-facing catalog before the cache probe: its epoch
  // is part of the key, so a plan costed against superseded index state
  // (DDL or mutation since) misses instead of being served.
  const xquery::plan::IndexCatalog catalog = engine.IndexCatalogSnapshot();
  const xquery::plan::PlanCacheKey key{
      static_cast<int>(id),
      static_cast<int>(db_class),
      static_cast<int>(EngineKind::kNative),
      guided,
      options.parallelism.max_intra,
      static_cast<int>(policy.mode),
      policy.forced_index,
      catalog.epoch};
  if (auto cached = engine.plan_cache().Lookup(key)) {
    *cache_hit = true;
    if (profile != nullptr) profile->compile_cache_hit = true;
    return cached;
  }
  *cache_hit = false;
  const std::string xquery = XQueryFor(id, db_class, params);
  if (xquery.empty()) {
    return Status::Unsupported(std::string(QueryName(id)) +
                               " is not defined for " +
                               datagen::DbClassName(db_class));
  }
  double parse_millis = 0;
  double analyze_millis = 0;
  XBENCH_ASSIGN_OR_RETURN(
      AnalyzedQuery analyzed,
      AnalyzeForClassFull(xquery, db_class, &parse_millis, &analyze_millis));
  Stopwatch plan_watch;
  XBENCH_ASSIGN_OR_RETURN(
      std::shared_ptr<const xquery::plan::CompiledQuery> compiled,
      xquery::plan::Compile(std::move(analyzed.ast),
                            &analyzed.report.annotations, options, &catalog));
  if (profile != nullptr) {
    profile->parse_millis = parse_millis;
    profile->analyze_millis = analyze_millis;
    profile->plan_millis = plan_watch.ElapsedMillis();
  }
  engine.plan_cache().Insert(key, compiled);
  return compiled;
}

void RunNative(engines::NativeEngine& engine,
               const xquery::plan::CompiledQuery& compiled,
               bool collect_plan_stats, bool profile,
               ExecutionResult& result) {
  xquery::exec::ExecStats scratch;
  xquery::exec::ExecStats* stats =
      collect_plan_stats || profile ? &result.plan_stats : &scratch;
  // No session-level index hint here: access-path selection (including
  // index probes and the document prefilter) is the planner's job now;
  // the compiled plan carries its choices.
  Stopwatch engine_watch;
  auto query_result = engine.ExecutePlan(compiled, stats);
  const double engine_millis = engine_watch.ElapsedMillis();
  if (!query_result.ok()) {
    result.status = query_result.status();
    return;
  }
  Stopwatch serialize_watch;
  result.lines = SplitLines(query_result->ToText());
  result.compiled = true;
  result.access_path = compiled.logical.access_path_summary;
  if (profile) {
    result.profile.collected = true;
    result.profile.engine_millis = engine_millis;
    result.profile.exec_millis = stats->total_millis;
    result.profile.serialize_millis = serialize_watch.ElapsedMillis();
  }
}

}  // namespace

Session::Session(engines::XmlDbms& engine, datagen::DbClass db_class,
                 QueryParams params, std::string name)
    : engine_(&engine),
      db_class_(db_class),
      params_(std::move(params)),
      name_(std::move(name)) {}

ExecutionResult Session::Run(QueryId id, const RunOptions& options) {
  return Run(id, params_, options);
}

ExecutionResult Session::Run(QueryId id, const QueryParams& params,
                             const RunOptions& options) {
  engines::XmlDbms& engine = *engine_;
  if (options.cold) engine.ColdRestart();
  // Native-path compile phase (parse + schema analysis + plan build, or a
  // plan-cache hit), outside the timed region. Analysis failures are hard
  // errors: a canned query that names an element the class DTD cannot
  // produce must not report a (fast, empty) success. ColdRestart above does
  // not touch the plan cache, so cold runs still hit compiled plans — the
  // statement cache survives a buffer-pool flush.
  std::shared_ptr<const xquery::plan::CompiledQuery> native_plan;
  bool native_cache_hit = false;
  QueryProfile profile;
  if (engine.kind() == EngineKind::kNative) {
    obs::ScopedSpan compile_span(
        obs::Tracer::Default().enabled()
            ? std::string("phase.compile.") + QueryName(id)
            : std::string());
    auto prepared = PrepareNativePlan(
        static_cast<engines::NativeEngine&>(engine), id, db_class_, params,
        options.compile, &native_cache_hit,
        options.profile ? &profile : nullptr);
    if (!prepared.ok()) {
      ExecutionResult failed;
      failed.status = prepared.status();
      ++stats_.queries_run;
      ++stats_.failures;
      return failed;
    }
    native_plan = std::move(prepared).value();
  }
  obs::ScopedClockSource clock_scope(engine.disk().clock());
  obs::Tracer& tracer = obs::Tracer::Default();
  obs::ScopedSpan span(tracer.enabled()
                           ? std::string("query.") + QueryName(id) + "." +
                                 engine.name()
                           : std::string(),
                       tracer);
  ExecutionResult result;
  // Timed region. The I/O side is attributed per-thread, so a concurrent
  // session's page reads — or a ColdRestart it issues — never land in this
  // statement's delta.
  const IoStats io_before = ThreadIoSnapshot();
  const double io_millis_before = ThreadIoMillis();
  Stopwatch wall;
  ThreadCpuStopwatch cpu;
  switch (engine.kind()) {
    case EngineKind::kNative: {
      auto& native = static_cast<engines::NativeEngine&>(engine);
      result.profile = profile;
      RunNative(native, *native_plan, options.collect_plan_stats,
                options.profile, result);
      result.plan_cache_hit = native_cache_hit;
      // A concurrent mutation can close the guided-eval gate between this
      // statement's compile phase and its execute, in which case the engine
      // rejects the now-stale guided plan rather than risk a wrong answer.
      // Unguided plans are always correct, so recompile with the access
      // path forced to full scans and retry once; the fallback plan cannot
      // bounce off the gate again.
      if (result.status.code() == StatusCode::kInvalidArgument &&
          native_plan->guided) {
        xquery::plan::CompilationOptions scan_options = options.compile;
        scan_options.access_path.mode =
            xquery::plan::AccessPathMode::kForceScan;
        scan_options.access_path.allow_guided = false;
        auto fallback = PrepareNativePlan(
            native, id, db_class_, params, scan_options, &native_cache_hit,
            options.profile ? &profile : nullptr);
        if (fallback.ok()) {
          result = ExecutionResult{};
          result.profile = profile;
          RunNative(native, **fallback, options.collect_plan_stats,
                    options.profile, result);
          result.plan_cache_hit = native_cache_hit;
        }
      }
      break;
    }
    case EngineKind::kClob: {
      // CLOB statements issue several engine calls (side-table filter,
      // CLOB fetch, reconstruction); hold the collection lock shared so a
      // concurrent mutation cannot land mid-statement.
      ReaderLock lock(engine.collection_mu());
      auto lines =
          RunClobQuery(static_cast<engines::ClobEngine&>(engine), id, params);
      if (lines.ok()) {
        result.lines = std::move(lines).value();
      } else {
        result.status = lines.status();
      }
      break;
    }
    case EngineKind::kShredDb2:
    case EngineKind::kShredMsSql: {
      ReaderLock lock(engine.collection_mu());
      auto lines = RunShredQuery(static_cast<engines::ShredEngine&>(engine),
                                 id, params);
      if (lines.ok()) {
        result.lines = std::move(lines).value();
      } else {
        result.status = lines.status();
      }
      break;
    }
  }
  result.cpu_millis =
      options.thread_time ? cpu.ElapsedMillis() : wall.ElapsedMillis();
  result.io_millis = ThreadIoMillis() - io_millis_before;
  result.io = IoStatsDelta(io_before, ThreadIoSnapshot());
  ++stats_.queries_run;
  if (!result.status.ok()) ++stats_.failures;
  stats_.cpu_millis += result.cpu_millis;
  stats_.io_millis += result.io_millis;
  stats_.io.pool_hits += result.io.pool_hits;
  stats_.io.pool_misses += result.io.pool_misses;
  stats_.io.pool_evictions += result.io.pool_evictions;
  stats_.io.pool_writebacks += result.io.pool_writebacks;
  stats_.io.disk_page_reads += result.io.disk_page_reads;
  stats_.io.disk_page_writes += result.io.disk_page_writes;
  stats_.io.disk_bytes_read += result.io.disk_bytes_read;
  stats_.io.disk_bytes_written += result.io.disk_bytes_written;
  return result;
}

}  // namespace xbench::workload
