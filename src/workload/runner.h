#ifndef XBENCH_WORKLOAD_RUNNER_H_
#define XBENCH_WORKLOAD_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/status.h"
#include "datagen/generator.h"
#include "engines/dbms.h"
#include "workload/queries.h"
#include "xquery/ast.h"
#include "xquery/exec/exec.h"

namespace xbench::workload {

/// Every engine kind, in the paper's row order.
const std::vector<engines::EngineKind>& AllEngines();

/// Engine factory. Delegates to engines::EngineRegistry::Default(), which
/// also resolves engines by string name for --engine flags.
std::unique_ptr<engines::XmlDbms> MakeEngine(engines::EngineKind kind);

/// Converts generated documents to bulk-load form.
std::vector<engines::LoadDocument> ToLoadDocuments(
    const datagen::GeneratedDatabase& db);

/// Buffer-pool and disk activity attributed to one measured operation.
struct IoStats {
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;
  uint64_t pool_writebacks = 0;
  uint64_t disk_page_reads = 0;
  uint64_t disk_page_writes = 0;
  uint64_t disk_bytes_read = 0;
  uint64_t disk_bytes_written = 0;
};

/// Absolute counter values for `engine`'s pool + disk: engine-lifetime
/// totals across all sessions. For attributing I/O to one operation under
/// concurrency, use ThreadIoSnapshot() deltas instead.
IoStats CaptureIoStats(const engines::XmlDbms& engine);

/// The calling thread's attributed pool/disk activity so far (see
/// common/thread_io.h). Deltas between two snapshots cover exactly the
/// work this thread did in between — other sessions' traffic and
/// ColdRestart calls cannot perturb them.
IoStats ThreadIoSnapshot();

/// Virtual I/O time charged by the calling thread so far (milliseconds).
double ThreadIoMillis();

/// Per-field difference `after - before`.
IoStats IoStatsDelta(const IoStats& before, const IoStats& after);

/// Common outcome of one measured engine operation (a bulk load, a query
/// execution): status plus the cpu/io time split and the I/O attributed
/// to the operation.
struct OpOutcome {
  Status status;
  /// CPU time spent by the operation (wall time by default; thread CPU
  /// time when the operation ran with RunOptions::thread_time).
  double cpu_millis = 0;
  /// Simulated disk time charged during the operation.
  double io_millis = 0;
  /// Pool/disk traffic attributed to the operation.
  IoStats io;

  double TotalMillis() const { return cpu_millis + io_millis; }
};

/// Load outcomes carry nothing beyond the common fields.
using TimedStatus = OpOutcome;

/// Bulk-loads `db` into `engine` (timed) — the Table 4 measurement.
/// For the native engine it additionally validates the loaded collection
/// against the canonical class schema (outside the timed region) and
/// enables guided descendant evaluation only when validation passes, so
/// analyzer-resolved `//` chains can never drop matches on a database
/// whose edges the fixed-sample schema missed.
TimedStatus BulkLoad(engines::XmlDbms& engine,
                     const datagen::GeneratedDatabase& db);

/// Creates the class's Table 3 value indexes (untimed in the paper's
/// tables, done after load).
Status CreateTable3Indexes(engines::XmlDbms& engine,
                           datagen::DbClass db_class);

/// Per-execution knobs for running one benchmark query.
struct RunOptions {
  /// Cold-restart the engine before the timed region (paper §3.1 cold-run
  /// methodology). Warm runs reuse whatever the pool and document caches
  /// hold.
  bool cold = true;
  /// Copy the run's per-operator counters into ExecutionResult::plan_stats
  /// (native compiled path).
  bool collect_plan_stats = true;
  /// Measure cpu_millis as thread CPU time (CLOCK_THREAD_CPUTIME_ID)
  /// instead of wall time. Concurrent throughput runs use this so one
  /// session's latency is unaffected by timeslicing against the others.
  bool thread_time = false;
  /// Collect phase-boundary timings into ExecutionResult::profile
  /// (native engine path).
  bool profile = false;
  /// Structured compilation options for the native compiled path:
  /// access-path policy (auto / force-guided / force-scan /
  /// force-index), cost-model knobs, and intra-query parallelism
  /// (compile.parallelism.max_intra; answers are byte-identical to scalar
  /// execution). The session clamps the policy against the engine's
  /// guided-eval gate before compiling — forcing guided on an unvalidated
  /// collection degrades to full scans rather than risk a wrong answer —
  /// and the plan cache keys on the policy + parallelism + catalog epoch,
  /// so differently-optioned plans coexist in the statement cache.
  /// Defaults (kAuto, guided allowed, scalar) reproduce the old behavior
  /// of the retired use_guided/max_intra_parallelism flags.
  xquery::plan::CompilationOptions compile;
};

/// Phase-boundary timings for one statement, native engine path. Compile
/// phases are measured outside the timed region (statement-prepare work)
/// and are zero on a plan-cache hit; `exec_millis` is the operator-tree
/// wall time (per-operator self times sum to it), `engine_millis` the
/// whole engine call around it (adds binding/materialization work), and
/// `serialize_millis` the result text rendering after the engine call.
struct QueryProfile {
  bool collected = false;
  double parse_millis = 0;
  double analyze_millis = 0;
  double plan_millis = 0;
  bool compile_cache_hit = false;
  double engine_millis = 0;
  double exec_millis = 0;
  double serialize_millis = 0;
};

struct ExecutionResult : OpOutcome {
  std::vector<std::string> lines;  // canonical answer, one line per item
  /// Compiled-plan path (native engine): `compiled` is set when the timed
  /// region executed a physical plan, `plan_cache_hit` when that plan came
  /// from the engine's statement cache instead of being compiled for this
  /// run, and `plan_stats` carries the run's per-operator counters in plan
  /// pre-order.
  bool compiled = false;
  bool plan_cache_hit = false;
  /// The compiled plan's one-line access-path decision summary (comma-
  /// joined probe choices such as "IndexScan(item_id)", or
  /// "guided-walk"/"full-scan"); empty on non-compiled paths. Reports
  /// surface this next to the per-operator estimated-vs-actual rows.
  std::string access_path;
  xquery::exec::ExecStats plan_stats;
  /// Filled when RunOptions::profile was set (native path).
  QueryProfile profile;
};

/// Parses `xquery` and type-checks it against the canonical schema of
/// `db_class` (see analysis::CanonicalClassSchema). Returns the analyzed
/// AST — with `//` steps annotated for guided evaluation — or
/// InvalidArgument when the query references names/axes the class DTD can
/// never satisfy. The native engine path runs every canned query through
/// this before the timed region, so a query against the wrong class
/// surfaces a hard error instead of a silently empty answer.
Result<xquery::ExprPtr> AnalyzeForClass(const std::string& xquery,
                                        datagen::DbClass db_class);

/// An analyzed query: the AST together with the analysis report whose
/// `annotations` the planner consumes. The annotations are keyed by AST
/// node identity, so the pair must travel (and stay alive) together.
struct AnalyzedQuery {
  xquery::ExprPtr ast;
  analysis::AnalysisReport report;
};

/// Like AnalyzeForClass, but also hands back the analysis report so a
/// compile phase can feed `report.annotations` to plan::Compile. When the
/// timing out-params are non-null they receive the parse and analyze
/// phase wall times (for QueryProfile).
Result<AnalyzedQuery> AnalyzeForClassFull(const std::string& xquery,
                                          datagen::DbClass db_class,
                                          double* parse_millis = nullptr,
                                          double* analyze_millis = nullptr);

/// Executes query `id` against `engine` for class `db_class`. Convenience
/// wrapper over a one-shot workload::Session (see workload/session.h);
/// multi-statement clients and concurrent clients should hold a Session.
ExecutionResult RunQuery(engines::XmlDbms& engine, QueryId id,
                         datagen::DbClass db_class, const QueryParams& params,
                         const RunOptions& options = {});

/// Canonicalizes answer lines for cross-engine comparison under the
/// query's AnswerShape (sorts kValueSet shapes, trims empties).
std::vector<std::string> CanonicalizeAnswer(QueryId id,
                                            std::vector<std::string> lines);

/// FNV-1a 64-bit hash of the canonicalized answer ('\n'-joined). Stored in
/// run reports so perf trajectories can assert answers did not change.
uint64_t AnswerHash(const std::vector<std::string>& lines);

}  // namespace xbench::workload

#endif  // XBENCH_WORKLOAD_RUNNER_H_
