#include "workload/relational_plans.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"
#include "engines/shredder.h"
#include "relational/exec.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"

namespace xbench::workload {

using datagen::DbClass;
using engines::ClobEngine;
using engines::ColumnMap;
using engines::Dad;
using engines::ShredEngine;
using engines::TableMap;
using relational::Key;
using relational::Row;
using relational::RowSet;
using relational::Table;
using relational::Value;

namespace {

// Implicit-column indexes (see engines/shredder.h).
constexpr int kDoc = engines::kColDoc;
constexpr int kRowId = engines::kColRowId;
constexpr int kParentTable = engines::kColParentTable;
constexpr int kParentRow = engines::kColParentRow;

/// Mapped-column index within a row of `table`.
int Col(const Table& table, const std::string& column) {
  return table.schema().IndexOf(column);
}

std::string ColText(const Table& table, const Row& row,
                    const std::string& column) {
  const int idx = Col(table, column);
  return idx < 0 ? "" : row[static_cast<size_t>(idx)].ToText();
}

bool ColNull(const Table& table, const Row& row, const std::string& column) {
  const int idx = Col(table, column);
  return idx < 0 || row[static_cast<size_t>(idx)].is_null();
}

Result<Table*> Find(relational::Database& db, const std::string& name) {
  Table* table = db.FindTable(name);
  if (table == nullptr) return Status::NotFound("table '" + name + "'");
  return table;
}

/// Children of `parent_row_id` in `table` via the auto-created FK index,
/// in insertion (document) order.
RowSet FkChildren(Table& table, int64_t parent_row_id) {
  return relational::IndexLookup(table, table.name() + "_fk",
                                 {Value::Int(parent_row_id)});
}

/// Lookup through an explicitly created Table 3 value index; falls back to
/// a sequential scan when the index was not created (no-index baseline).
RowSet ValueLookup(Table& table, const std::string& index_name,
                   const std::string& column, const std::string& value) {
  if (table.FindIndex(index_name) != nullptr) {
    return relational::IndexLookup(table, index_name,
                                   {Value::String(value)});
  }
  const int idx = Col(table, column);
  return relational::SeqScan(table, [&](const Row& row) {
    return !row[static_cast<size_t>(idx)].is_null() &&
           row[static_cast<size_t>(idx)].ToText() == value;
  });
}

/// Rebuilds an element from a shredded row: "@x" columns become
/// attributes, single-segment paths child elements (DAD order); NULL
/// columns and nested paths are dropped — the lossy reconstruction the
/// paper describes ("the structure ... is not necessarily the same").
std::string ReconstructRow(const TableMap& map, const Table& table,
                           const Row& row) {
  std::string out = "<" + map.element;
  for (const ColumnMap& col : map.columns) {
    if (col.rel_path.size() > 1 && col.rel_path[0] == '@' &&
        !ColNull(table, row, col.column)) {
      out += " " + col.rel_path.substr(1) + "=\"" +
             xml::EscapeAttribute(ColText(table, row, col.column)) + "\"";
    }
  }
  out += ">";
  for (const ColumnMap& col : map.columns) {
    if (col.rel_path.empty() || col.rel_path[0] == '@') continue;
    if (col.rel_path.find('/') != std::string::npos) continue;
    if (ColNull(table, row, col.column)) continue;
    if (col.rel_path == ".") {
      out += xml::EscapeText(ColText(table, row, col.column));
      continue;
    }
    out += "<" + col.rel_path + ">" +
           xml::EscapeText(ColText(table, row, col.column)) + "</" +
           col.rel_path + ">";
  }
  out += "</" + map.element + ">";
  return out;
}

const TableMap* MapFor(const Dad& dad, const std::string& table_name) {
  for (const TableMap& map : dad.tables) {
    if (map.table == table_name) return &map;
  }
  return nullptr;
}

/// Date-period predicate on a string column.
relational::RowPredicate InPeriod(const Table& table,
                                  const std::string& column,
                                  const QueryParams& p) {
  const int idx = Col(table, column);
  return [idx, lo = p.date_lo, hi = p.date_hi](const Row& row) {
    if (row[static_cast<size_t>(idx)].is_null()) return false;
    const std::string& v = row[static_cast<size_t>(idx)].AsString();
    return v >= lo && v <= hi;
  };
}

// ---------------------------------------------------------------------
// Shredded plans per class
// ---------------------------------------------------------------------

Result<std::vector<std::string>> ShredQ5(ShredEngine& e,
                                         const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  auto& db = e.tables();
  switch (e.db_class()) {
    case DbClass::kDcMd: {
      XBENCH_ASSIGN_OR_RETURN(Table * orders, Find(db, "order_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * lines, Find(db, "order_line_tab"));
      RowSet hits = ValueLookup(*orders, "order/@id", "order_id", p.order_id);
      if (hits.empty()) return std::vector<std::string>{};
      RowSet children =
          FkChildren(*lines, hits[0][kRowId].AsInt());
      if (children.empty()) return std::vector<std::string>{};
      // No order information is maintained (paper §3.1.3 problem 2): rely
      // on insertion order, which "happens to return the correct result".
      return std::vector<std::string>{ReconstructRow(
          *MapFor(e.dad(), "order_line_tab"), *lines, children[0])};
    }
    case DbClass::kDcSd: {
      XBENCH_ASSIGN_OR_RETURN(Table * items, Find(db, "item_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * authors, Find(db, "author_tab"));
      RowSet hits = ValueLookup(*items, "item/@id", "item_id", p.item_id);
      if (hits.empty()) return std::vector<std::string>{};
      RowSet children = FkChildren(*authors, hits[0][kRowId].AsInt());
      if (children.empty()) return std::vector<std::string>{};
      const Row& a = children[0];
      return std::vector<std::string>{
          "<name><first_name>" +
          xml::EscapeText(ColText(*authors, a, "first_name")) +
          "</first_name><last_name>" +
          xml::EscapeText(ColText(*authors, a, "last_name")) +
          "</last_name></name>"};
    }
    case DbClass::kTcSd: {
      XBENCH_ASSIGN_OR_RETURN(Table * entries, Find(db, "entry_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * senses, Find(db, "sense_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * quotes, Find(db, "quote_tab"));
      RowSet hits = ValueLookup(*entries, "hw", "hw", p.headword);
      if (hits.empty()) return std::vector<std::string>{};
      for (const Row& sense : FkChildren(*senses, hits[0][kRowId].AsInt())) {
        RowSet qs = FkChildren(*quotes, sense[kRowId].AsInt());
        if (!qs.empty()) {
          return std::vector<std::string>{ReconstructRow(
              *MapFor(e.dad(), "quote_tab"), *quotes, qs[0])};
        }
      }
      return std::vector<std::string>{};
    }
    case DbClass::kTcMd: {
      XBENCH_ASSIGN_OR_RETURN(Table * articles, Find(db, "article_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * sections, Find(db, "section_tab"));
      RowSet hits =
          ValueLookup(*articles, "article/@id", "article_id", p.article_id);
      if (hits.empty()) return std::vector<std::string>{};
      RowSet children = FkChildren(*sections, hits[0][kRowId].AsInt());
      if (children.empty()) return std::vector<std::string>{};
      return std::vector<std::string>{
          "<heading>" +
          xml::EscapeText(ColText(*sections, children[0], "heading")) +
          "</heading>"};
    }
  }
  return std::vector<std::string>{};
}

Result<std::vector<std::string>> ShredQ8(ShredEngine& e,
                                         const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  auto& db = e.tables();
  std::vector<std::string> out;
  switch (e.db_class()) {
    case DbClass::kTcSd: {
      XBENCH_ASSIGN_OR_RETURN(Table * entries, Find(db, "entry_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * senses, Find(db, "sense_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * quotes, Find(db, "quote_tab"));
      RowSet hits = ValueLookup(*entries, "hw", "hw", p.headword);
      for (const Row& entry : hits) {
        for (const Row& sense : FkChildren(*senses, entry[kRowId].AsInt())) {
          for (const Row& q : FkChildren(*quotes, sense[kRowId].AsInt())) {
            out.push_back(ColText(*quotes, q, "qt"));
          }
        }
      }
      return out;
    }
    case DbClass::kDcMd: {
      XBENCH_ASSIGN_OR_RETURN(Table * orders, Find(db, "order_tab"));
      for (const Row& row :
           ValueLookup(*orders, "order/@id", "order_id", p.order_id)) {
        out.push_back(ColText(*orders, row, "ship_type"));
      }
      return out;
    }
    case DbClass::kDcSd: {
      XBENCH_ASSIGN_OR_RETURN(Table * items, Find(db, "item_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * authors, Find(db, "author_tab"));
      for (const Row& item :
           ValueLookup(*items, "item/@id", "item_id", p.item_id)) {
        for (const Row& a : FkChildren(*authors, item[kRowId].AsInt())) {
          out.push_back(ColText(*authors, a, "first_name"));
        }
      }
      return out;
    }
    case DbClass::kTcMd: {
      XBENCH_ASSIGN_OR_RETURN(Table * articles, Find(db, "article_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * keywords, Find(db, "keyword_tab"));
      RowSet hits =
          ValueLookup(*articles, "article/@id", "article_id", p.article_id);
      if (hits.empty()) return out;
      const std::string doc = hits[0][kDoc].ToText();
      const int doc_col = kDoc;
      for (const Row& k : relational::SeqScan(*keywords, [&](const Row& row) {
             return row[static_cast<size_t>(doc_col)].ToText() == doc;
           })) {
        out.push_back(ColText(*keywords, k, "word"));
      }
      return out;
    }
  }
  return out;
}

Result<std::vector<std::string>> ShredQ12(ShredEngine& e,
                                          const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  auto& db = e.tables();
  switch (e.db_class()) {
    case DbClass::kDcSd: {
      XBENCH_ASSIGN_OR_RETURN(Table * items, Find(db, "item_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * authors, Find(db, "author_tab"));
      RowSet hits = ValueLookup(*items, "item/@id", "item_id", p.item_id);
      if (hits.empty()) return std::vector<std::string>{};
      RowSet children = FkChildren(*authors, hits[0][kRowId].AsInt());
      if (children.empty()) return std::vector<std::string>{};
      const Row& a = children[0];
      std::string out = "<mail_address>";
      for (const char* col : {"street", "city", "zip", "country"}) {
        if (!ColNull(*authors, a, col)) {
          out += std::string("<") + col + ">" +
                 xml::EscapeText(ColText(*authors, a, col)) + "</" + col +
                 ">";
        }
      }
      out += "</mail_address>";
      return std::vector<std::string>{out};
    }
    case DbClass::kDcMd: {
      XBENCH_ASSIGN_OR_RETURN(Table * orders, Find(db, "order_tab"));
      RowSet hits = ValueLookup(*orders, "order/@id", "order_id", p.order_id);
      if (hits.empty()) return std::vector<std::string>{};
      const Row& o = hits[0];
      std::string out = "<ship_address>";
      const std::pair<const char*, const char*> cols[] = {
          {"ship_street", "street"},
          {"ship_city", "city"},
          {"ship_zip", "zip"},
          {"ship_country", "country"}};
      for (const auto& [column, element] : cols) {
        if (!ColNull(*orders, o, column)) {
          out += std::string("<") + element + ">" +
                 xml::EscapeText(ColText(*orders, o, column)) + "</" +
                 element + ">";
        }
      }
      out += "</ship_address>";
      return std::vector<std::string>{out};
    }
    case DbClass::kTcSd: {
      XBENCH_ASSIGN_OR_RETURN(Table * entries, Find(db, "entry_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * senses, Find(db, "sense_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * quotes, Find(db, "quote_tab"));
      RowSet hits = ValueLookup(*entries, "hw", "hw", p.headword);
      if (hits.empty()) return std::vector<std::string>{};
      for (const Row& sense : FkChildren(*senses, hits[0][kRowId].AsInt())) {
        RowSet qs = FkChildren(*quotes, sense[kRowId].AsInt());
        if (!qs.empty()) {
          return std::vector<std::string>{
              "<qp>" +
              ReconstructRow(*MapFor(e.dad(), "quote_tab"), *quotes, qs[0]) +
              "</qp>"};
        }
      }
      return std::vector<std::string>{};
    }
    case DbClass::kTcMd: {
      XBENCH_ASSIGN_OR_RETURN(Table * articles, Find(db, "article_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * abstracts, Find(db, "abstract_tab"));
      RowSet hits =
          ValueLookup(*articles, "article/@id", "article_id", p.article_id);
      if (hits.empty()) return std::vector<std::string>{};
      const std::string doc = hits[0][kDoc].ToText();
      for (const Row& row :
           relational::SeqScan(*abstracts, [&](const Row& r) {
             return r[kDoc].ToText() == doc;
           })) {
        return std::vector<std::string>{
            "<abstract>" + xml::EscapeText(ColText(*abstracts, row, "text")) +
            "</abstract>"};
      }
      return std::vector<std::string>{};
    }
  }
  return std::vector<std::string>{};
}

Result<std::vector<std::string>> ShredQ14(ShredEngine& e,
                                          const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  auto& db = e.tables();
  std::vector<std::string> out;
  switch (e.db_class()) {
    case DbClass::kDcSd: {
      XBENCH_ASSIGN_OR_RETURN(Table * items, Find(db, "item_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * pubs, Find(db, "publisher_tab"));
      RowSet in_period =
          relational::SeqScan(*items, InPeriod(*items, "date_of_release", p));
      for (const Row& item : in_period) {
        for (const Row& pub : FkChildren(*pubs, item[kRowId].AsInt())) {
          if (ColNull(*pubs, pub, "fax_number")) {
            out.push_back(ColText(*pubs, pub, "name"));
          }
        }
      }
      return out;
    }
    case DbClass::kDcMd: {
      XBENCH_ASSIGN_OR_RETURN(Table * orders, Find(db, "order_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * lines, Find(db, "order_line_tab"));
      // Table scan over order lines (no index on the missing element).
      std::set<int64_t> parents;
      lines->Scan([&](storage::RecordId, const Row& row) {
        if (ColNull(*lines, row, "comments") && !row[kParentRow].is_null()) {
          parents.insert(row[kParentRow].AsInt());
        }
        return true;
      });
      auto period = InPeriod(*orders, "order_date", p);
      orders->Scan([&](storage::RecordId, const Row& row) {
        if (period(row) && parents.count(row[kRowId].AsInt()) != 0) {
          out.push_back(ColText(*orders, row, "order_id"));
        }
        return true;
      });
      return out;
    }
    case DbClass::kTcSd: {
      XBENCH_ASSIGN_OR_RETURN(Table * entries, Find(db, "entry_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * senses, Find(db, "sense_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * quotes, Find(db, "quote_tab"));
      // Entries that have at least one quotation: quote -> sense -> entry.
      std::map<int64_t, int64_t> sense_parent;
      senses->Scan([&](storage::RecordId, const Row& row) {
        if (!row[kParentRow].is_null()) {
          sense_parent[row[kRowId].AsInt()] = row[kParentRow].AsInt();
        }
        return true;
      });
      std::set<int64_t> entries_with_quotes;
      quotes->Scan([&](storage::RecordId, const Row& row) {
        if (!row[kParentRow].is_null()) {
          auto it = sense_parent.find(row[kParentRow].AsInt());
          if (it != sense_parent.end()) entries_with_quotes.insert(it->second);
        }
        return true;
      });
      entries->Scan([&](storage::RecordId, const Row& row) {
        if (ColNull(*entries, row, "etym") &&
            entries_with_quotes.count(row[kRowId].AsInt()) != 0) {
          out.push_back(ColText(*entries, row, "hw"));
        }
        return true;
      });
      return out;
    }
    case DbClass::kTcMd: {
      XBENCH_ASSIGN_OR_RETURN(Table * articles, Find(db, "article_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * keywords, Find(db, "keyword_tab"));
      std::set<std::string> docs_with_keywords;
      keywords->Scan([&](storage::RecordId, const Row& row) {
        docs_with_keywords.insert(row[kDoc].ToText());
        return true;
      });
      auto period = InPeriod(*articles, "date", p);
      articles->Scan([&](storage::RecordId, const Row& row) {
        if (period(row) &&
            docs_with_keywords.count(row[kDoc].ToText()) == 0) {
          out.push_back(ColText(*articles, row, "title"));
        }
        return true;
      });
      return out;
    }
  }
  return out;
}

Result<std::vector<std::string>> ShredQ17(ShredEngine& e,
                                          const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  auto& db = e.tables();
  std::vector<std::string> out;
  const std::string& word = p.search_word;
  switch (e.db_class()) {
    case DbClass::kTcSd: {
      XBENCH_ASSIGN_OR_RETURN(Table * entries, Find(db, "entry_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * senses, Find(db, "sense_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * quotes, Find(db, "quote_tab"));
      std::map<int64_t, int64_t> sense_parent;
      senses->Scan([&](storage::RecordId, const Row& row) {
        if (!row[kParentRow].is_null()) {
          sense_parent[row[kRowId].AsInt()] = row[kParentRow].AsInt();
        }
        return true;
      });
      std::set<int64_t> matching_entries;
      quotes->Scan([&](storage::RecordId, const Row& row) {
        if (!ColNull(*quotes, row, "qt") &&
            ContainsWord(ColText(*quotes, row, "qt"), word) &&
            !row[kParentRow].is_null()) {
          auto it = sense_parent.find(row[kParentRow].AsInt());
          if (it != sense_parent.end()) matching_entries.insert(it->second);
        }
        return true;
      });
      entries->Scan([&](storage::RecordId, const Row& row) {
        if (matching_entries.count(row[kRowId].AsInt()) != 0) {
          out.push_back(ColText(*entries, row, "hw"));
        }
        return true;
      });
      return out;
    }
    case DbClass::kTcMd: {
      XBENCH_ASSIGN_OR_RETURN(Table * articles, Find(db, "article_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * paras, Find(db, "para_tab"));
      std::set<std::string> docs;
      paras->Scan([&](storage::RecordId, const Row& row) {
        if (!ColNull(*paras, row, "text") &&
            ContainsWord(ColText(*paras, row, "text"), word)) {
          docs.insert(row[kDoc].ToText());
        }
        return true;
      });
      articles->Scan([&](storage::RecordId, const Row& row) {
        if (docs.count(row[kDoc].ToText()) != 0) {
          out.push_back(ColText(*articles, row, "title"));
        }
        return true;
      });
      return out;
    }
    case DbClass::kDcSd: {
      XBENCH_ASSIGN_OR_RETURN(Table * items, Find(db, "item_tab"));
      items->Scan([&](storage::RecordId, const Row& row) {
        if (!ColNull(*items, row, "description") &&
            ContainsWord(ColText(*items, row, "description"), word)) {
          out.push_back(ColText(*items, row, "title"));
        }
        return true;
      });
      return out;
    }
    case DbClass::kDcMd: {
      XBENCH_ASSIGN_OR_RETURN(Table * orders, Find(db, "order_tab"));
      XBENCH_ASSIGN_OR_RETURN(Table * lines, Find(db, "order_line_tab"));
      std::set<int64_t> parents;
      lines->Scan([&](storage::RecordId, const Row& row) {
        if (!ColNull(*lines, row, "comments") &&
            ContainsWord(ColText(*lines, row, "comments"), word) &&
            !row[kParentRow].is_null()) {
          parents.insert(row[kParentRow].AsInt());
        }
        return true;
      });
      orders->Scan([&](storage::RecordId, const Row& row) {
        if (parents.count(row[kRowId].AsInt()) != 0) {
          out.push_back(ColText(*orders, row, "order_id"));
        }
        return true;
      });
      return out;
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Extended shredded plans: the rest of the 20-query workload, for the
// classes where §2.2 defines them (the paper ran the full workload; it
// reported only the subset).
// ---------------------------------------------------------------------

std::string WrapTag(const char* tag, const std::string& value) {
  return std::string("<") + tag + ">" + xml::EscapeText(value) + "</" + tag +
         ">";
}

/// doc name -> value of `column` in `table` (first row per doc).
std::map<std::string, std::string> DocColumn(Table& table,
                                             const std::string& column) {
  std::map<std::string, std::string> out;
  table.Scan([&](storage::RecordId, const Row& row) {
    out.emplace(row[kDoc].ToText(), ColText(table, row, column));
    return true;
  });
  return out;
}

Result<std::vector<std::string>> ShredQ1(ShredEngine& e,
                                         const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  XBENCH_ASSIGN_OR_RETURN(Table * items, Find(e.tables(), "item_tab"));
  std::vector<std::string> out;
  for (const Row& row :
       ValueLookup(*items, "item/@id", "item_id", p.item_id)) {
    out.push_back(WrapTag("title", ColText(*items, row, "title")));
  }
  return out;
}

Result<std::vector<std::string>> ShredQ2(ShredEngine& e,
                                         const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  XBENCH_ASSIGN_OR_RETURN(Table * authors, Find(e.tables(), "art_author_tab"));
  XBENCH_ASSIGN_OR_RETURN(Table * articles, Find(e.tables(), "article_tab"));
  std::set<std::string> docs;
  authors->Scan([&](storage::RecordId, const Row& row) {
    if (ColText(*authors, row, "name") == p.author) {
      docs.insert(row[kDoc].ToText());
    }
    return true;
  });
  std::vector<std::string> out;
  articles->Scan([&](storage::RecordId, const Row& row) {
    if (docs.count(row[kDoc].ToText()) != 0) {
      out.push_back(WrapTag("title", ColText(*articles, row, "title")));
    }
    return true;
  });
  return out;
}

Result<std::vector<std::string>> ShredQ3(ShredEngine& e,
                                         const QueryParams&)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  XBENCH_ASSIGN_OR_RETURN(Table * senses, Find(e.tables(), "sense_tab"));
  XBENCH_ASSIGN_OR_RETURN(Table * quotes, Find(e.tables(), "quote_tab"));
  std::map<int64_t, int64_t> sense_parent;
  senses->Scan([&](storage::RecordId, const Row& row) {
    if (!row[kParentRow].is_null()) {
      sense_parent[row[kRowId].AsInt()] = row[kParentRow].AsInt();
    }
    return true;
  });
  // location -> distinct entries having a quotation there.
  std::map<std::string, std::set<int64_t>> groups;
  quotes->Scan([&](storage::RecordId, const Row& row) {
    if (ColNull(*quotes, row, "qloc") || row[kParentRow].is_null()) {
      return true;
    }
    auto it = sense_parent.find(row[kParentRow].AsInt());
    if (it != sense_parent.end()) {
      groups[ColText(*quotes, row, "qloc")].insert(it->second);
    }
    return true;
  });
  std::vector<std::string> out;
  for (const auto& [loc, entries] : groups) {
    out.push_back("<group><loc>" + xml::EscapeText(loc) + "</loc><entries>" +
                  std::to_string(entries.size()) + "</entries></group>");
  }
  return out;
}

Result<std::vector<std::string>> ShredQ6(ShredEngine& e,
                                         const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  XBENCH_ASSIGN_OR_RETURN(Table * paras, Find(e.tables(), "para_tab"));
  XBENCH_ASSIGN_OR_RETURN(Table * articles, Find(e.tables(), "article_tab"));
  std::set<std::string> docs;
  paras->Scan([&](storage::RecordId, const Row& row) {
    const std::string text = ColText(*paras, row, "text");
    if (ContainsWord(text, p.keyword1) && ContainsWord(text, p.keyword2)) {
      docs.insert(row[kDoc].ToText());
    }
    return true;
  });
  std::vector<std::string> out;
  articles->Scan([&](storage::RecordId, const Row& row) {
    if (docs.count(row[kDoc].ToText()) != 0) {
      out.push_back(WrapTag("title", ColText(*articles, row, "title")));
    }
    return true;
  });
  return out;
}

Result<std::vector<std::string>> ShredQ7(ShredEngine& e,
                                         const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  XBENCH_ASSIGN_OR_RETURN(Table * items, Find(e.tables(), "item_tab"));
  XBENCH_ASSIGN_OR_RETURN(Table * authors, Find(e.tables(), "author_tab"));
  // item row -> has an author from another country?
  std::set<int64_t> disqualified;
  authors->Scan([&](storage::RecordId, const Row& row) {
    if (!row[kParentRow].is_null() &&
        ColText(*authors, row, "country") != p.country) {
      disqualified.insert(row[kParentRow].AsInt());
    }
    return true;
  });
  std::vector<std::string> out;
  items->Scan([&](storage::RecordId, const Row& row) {
    if (disqualified.count(row[kRowId].AsInt()) == 0) {
      out.push_back(WrapTag("title", ColText(*items, row, "title")));
    }
    return true;
  });
  return out;
}

Result<std::vector<std::string>> ShredQ9(ShredEngine& e,
                                         const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  XBENCH_ASSIGN_OR_RETURN(Table * orders, Find(e.tables(), "order_tab"));
  std::vector<std::string> out;
  for (const Row& row :
       ValueLookup(*orders, "order/@id", "order_id", p.order_id)) {
    out.push_back(ColText(*orders, row, "status"));
  }
  return out;
}

Result<std::vector<std::string>> ShredQ10(ShredEngine& e,
                                          const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  XBENCH_ASSIGN_OR_RETURN(Table * orders, Find(e.tables(), "order_tab"));
  RowSet rows =
      relational::SeqScan(*orders, InPeriod(*orders, "order_date", p));
  relational::SortRows(rows, {{Col(*orders, "ship_type"), true, false}});
  std::vector<std::string> out;
  for (const Row& row : rows) {
    out.push_back("<o><id>" +
                  xml::EscapeText(ColText(*orders, row, "order_id")) +
                  "</id><date>" +
                  xml::EscapeText(ColText(*orders, row, "order_date")) +
                  "</date><ship>" +
                  xml::EscapeText(ColText(*orders, row, "ship_type")) +
                  "</ship></o>");
  }
  return out;
}

Result<std::vector<std::string>> ShredQ11(ShredEngine& e,
                                          const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  XBENCH_ASSIGN_OR_RETURN(Table * entries, Find(e.tables(), "entry_tab"));
  XBENCH_ASSIGN_OR_RETURN(Table * senses, Find(e.tables(), "sense_tab"));
  XBENCH_ASSIGN_OR_RETURN(Table * quotes, Find(e.tables(), "quote_tab"));
  RowSet hits = ValueLookup(*entries, "hw", "hw", p.headword);
  RowSet quote_rows;
  for (const Row& entry : hits) {
    for (const Row& sense : FkChildren(*senses, entry[kRowId].AsInt())) {
      for (const Row& q : FkChildren(*quotes, sense[kRowId].AsInt())) {
        quote_rows.push_back(q);
      }
    }
  }
  relational::SortRows(quote_rows, {{Col(*quotes, "qd"), true, false}});
  std::vector<std::string> out;
  for (const Row& row : quote_rows) {
    out.push_back("<quote><qau>" +
                  xml::EscapeText(ColText(*quotes, row, "qau")) +
                  "</qau><qd>" + xml::EscapeText(ColText(*quotes, row, "qd")) +
                  "</qd></quote>");
  }
  return out;
}

Result<std::vector<std::string>> ShredQ13(ShredEngine& e,
                                          const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  XBENCH_ASSIGN_OR_RETURN(Table * articles, Find(e.tables(), "article_tab"));
  XBENCH_ASSIGN_OR_RETURN(Table * authors, Find(e.tables(), "art_author_tab"));
  XBENCH_ASSIGN_OR_RETURN(Table * abstracts, Find(e.tables(), "abstract_tab"));
  RowSet hits =
      ValueLookup(*articles, "article/@id", "article_id", p.article_id);
  if (hits.empty()) return std::vector<std::string>{};
  const std::string doc = hits[0][kDoc].ToText();

  std::string first_author;
  authors->Scan([&](storage::RecordId, const Row& row) {
    if (row[kDoc].ToText() == doc) {
      first_author = ColText(*authors, row, "name");
      return false;
    }
    return true;
  });
  std::string abstract_text;
  abstracts->Scan([&](storage::RecordId, const Row& row) {
    if (row[kDoc].ToText() == doc) {
      abstract_text = ColText(*abstracts, row, "text");
      return false;
    }
    return true;
  });
  // Reconstruction from shreds loses the abstract's paragraph structure —
  // the §3.2.2 deviation.
  return std::vector<std::string>{
      "<result><title>" +
      xml::EscapeText(ColText(*articles, hits[0], "title")) +
      "</title><first_author>" + xml::EscapeText(first_author) +
      "</first_author><date>" +
      xml::EscapeText(ColText(*articles, hits[0], "date")) +
      "</date><abstract>" + xml::EscapeText(abstract_text) +
      "</abstract></result>"};
}

Result<std::vector<std::string>> ShredQ15(ShredEngine& e,
                                          const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  XBENCH_ASSIGN_OR_RETURN(Table * articles, Find(e.tables(), "article_tab"));
  XBENCH_ASSIGN_OR_RETURN(Table * authors, Find(e.tables(), "art_author_tab"));
  std::map<std::string, std::string> doc_date =
      DocColumn(*articles, "date");
  std::vector<std::string> out;
  const int contact_idx = Col(*authors, "contact");
  authors->Scan([&](storage::RecordId, const Row& row) {
    const Value& contact = row[static_cast<size_t>(contact_idx)];
    // Present-but-empty contact (NULL = absent, skipped).
    if (contact.is_null() || !contact.AsString().empty()) return true;
    auto it = doc_date.find(row[kDoc].ToText());
    if (it == doc_date.end()) return true;
    if (it->second < p.date_lo || it->second > p.date_hi) return true;
    out.push_back(WrapTag("name", ColText(*authors, row, "name")));
    return true;
  });
  return out;
}

Result<std::vector<std::string>> ShredQ16(ShredEngine& e,
                                          const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  // Whole-document reconstruction from shredded tables: joins plus a
  // lossy structure, the paper's document-reconstruction weakness.
  XBENCH_ASSIGN_OR_RETURN(Table * orders, Find(e.tables(), "order_tab"));
  XBENCH_ASSIGN_OR_RETURN(Table * lines, Find(e.tables(), "order_line_tab"));
  XBENCH_ASSIGN_OR_RETURN(Table * xacts, Find(e.tables(), "cc_xact_tab"));
  RowSet hits = ValueLookup(*orders, "order/@id", "order_id", p.order_id);
  if (hits.empty()) return std::vector<std::string>{};
  const int64_t order_row = hits[0][kRowId].AsInt();

  std::string out = "<order id=\"" +
                    xml::EscapeAttribute(ColText(*orders, hits[0],
                                                 "order_id")) +
                    "\">";
  for (const char* col :
       {"customer_id", "order_date", "sub_total", "tax", "total", "ship_type",
        "ship_date", "status"}) {
    if (!ColNull(*orders, hits[0], col)) {
      out += WrapTag(col, ColText(*orders, hits[0], col));
    }
  }
  for (const Row& cx : FkChildren(*xacts, order_row)) {
    out += ReconstructRow(*MapFor(e.dad(), "cc_xact_tab"), *xacts, cx);
  }
  out += "<order_lines>";
  for (const Row& line : FkChildren(*lines, order_row)) {
    out += ReconstructRow(*MapFor(e.dad(), "order_line_tab"), *lines, line);
  }
  out += "</order_lines></order>";
  return std::vector<std::string>{out};
}

Result<std::vector<std::string>> ShredQ18(ShredEngine& e,
                                          const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  XBENCH_ASSIGN_OR_RETURN(Table * paras, Find(e.tables(), "para_tab"));
  XBENCH_ASSIGN_OR_RETURN(Table * articles, Find(e.tables(), "article_tab"));
  XBENCH_ASSIGN_OR_RETURN(Table * abstracts, Find(e.tables(), "abstract_tab"));
  std::set<std::string> docs;
  paras->Scan([&](storage::RecordId, const Row& row) {
    if (ContainsPhrase(ColText(*paras, row, "text"), p.phrase)) {
      docs.insert(row[kDoc].ToText());
    }
    return true;
  });
  std::map<std::string, std::string> doc_abstract =
      DocColumn(*abstracts, "text");
  std::vector<std::string> out;
  articles->Scan([&](storage::RecordId, const Row& row) {
    const std::string doc = row[kDoc].ToText();
    if (docs.count(doc) == 0) return true;
    out.push_back("<hit><title>" +
                  xml::EscapeText(ColText(*articles, row, "title")) +
                  "</title><abstract>" +
                  xml::EscapeText(doc_abstract[doc]) + "</abstract></hit>");
    return true;
  });
  return out;
}

Result<std::vector<std::string>> ShredQ19(ShredEngine& e,
                                          const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  XBENCH_ASSIGN_OR_RETURN(Table * orders, Find(e.tables(), "order_tab"));
  XBENCH_ASSIGN_OR_RETURN(Table * customers, Find(e.tables(), "customer_tab"));
  RowSet hits = ValueLookup(*orders, "order/@id", "order_id", p.order_id);
  if (hits.empty()) return std::vector<std::string>{};
  const std::string customer_id = ColText(*orders, hits[0], "customer_id");
  const std::string status = ColText(*orders, hits[0], "status");
  std::vector<std::string> out;
  customers->Scan([&](storage::RecordId, const Row& row) {
    if (ColText(*customers, row, "customer_id") != customer_id) return true;
    out.push_back("<r><name>" +
                  xml::EscapeText(ColText(*customers, row, "first_name") +
                                  " " +
                                  ColText(*customers, row, "last_name")) +
                  "</name><phone>" +
                  xml::EscapeText(ColText(*customers, row, "phone")) +
                  "</phone><status>" + xml::EscapeText(status) +
                  "</status></r>");
    return true;
  });
  return out;
}

Result<std::vector<std::string>> ShredQ20(ShredEngine& e,
                                          const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  XBENCH_ASSIGN_OR_RETURN(Table * items, Find(e.tables(), "item_tab"));
  std::vector<std::string> out;
  const int size_idx = Col(*items, "size");
  items->Scan([&](storage::RecordId, const Row& row) {
    const Value& size = row[static_cast<size_t>(size_idx)];
    if (!size.is_null() && size.AsInt() > p.size_threshold) {
      out.push_back(WrapTag("title", ColText(*items, row, "title")));
    }
    return true;
  });
  return out;
}

// ---------------------------------------------------------------------
// Xcolumn plans (MD classes)
// ---------------------------------------------------------------------

Result<std::string> ClobDocFor(ClobEngine& e, const std::string& side_table,
                               const std::string& index_name,
                               const std::string& column,
                               const std::string& value)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  XBENCH_ASSIGN_OR_RETURN(Table * table, Find(e.side_tables(), side_table));
  RowSet hits = ValueLookup(*table, index_name, column, value);
  if (hits.empty()) return Status::NotFound("no row for " + value);
  return hits[0][kDoc].ToText();
}

Result<std::vector<std::string>> QueryLines(ClobEngine& e,
                                            const std::string& doc,
                                            const std::string& xquery)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  XBENCH_ASSIGN_OR_RETURN(xquery::QueryResult result,
                          e.QueryDocument(doc, xquery));
  std::vector<std::string> lines = Split(result.ToText(), '\n');
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

Result<std::vector<std::string>> ClobQ5(ClobEngine& e, const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  if (e.side_dad().tables.empty()) {
    return Status::Unsupported("Xcolumn hosts only the MD classes");
  }
  if (e.side_tables().FindTable("side_order") != nullptr) {
    auto doc = ClobDocFor(e, "side_order", "order/@id", "order_id",
                          p.order_id);
    if (!doc.ok()) return std::vector<std::string>{};
    return QueryLines(e, *doc, "($input/order_lines/order_line)[1]");
  }
  auto doc = ClobDocFor(e, "side_article", "article/@id", "article_id",
                        p.article_id);
  if (!doc.ok()) return std::vector<std::string>{};
  return QueryLines(e, *doc, "($input/body/sec)[1]/heading");
}

Result<std::vector<std::string>> ClobQ8(ClobEngine& e, const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  std::vector<std::string> out;
  if (e.side_tables().FindTable("side_order") != nullptr) {
    XBENCH_ASSIGN_OR_RETURN(Table * orders,
                            Find(e.side_tables(), "side_order"));
    for (const Row& row :
         ValueLookup(*orders, "order/@id", "order_id", p.order_id)) {
      out.push_back(ColText(*orders, row, "ship_type"));
    }
    return out;
  }
  XBENCH_ASSIGN_OR_RETURN(Table * articles,
                          Find(e.side_tables(), "side_article"));
  XBENCH_ASSIGN_OR_RETURN(Table * keywords,
                          Find(e.side_tables(), "side_keyword"));
  RowSet hits =
      ValueLookup(*articles, "article/@id", "article_id", p.article_id);
  if (hits.empty()) return out;
  const std::string doc = hits[0][kDoc].ToText();
  keywords->Scan([&](storage::RecordId, const Row& row) {
    if (row[kDoc].ToText() == doc) {
      out.push_back(ColText(*keywords, row, "word"));
    }
    return true;
  });
  return out;
}

Result<std::vector<std::string>> ClobQ12(ClobEngine& e,
                                         const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  if (e.side_tables().FindTable("side_order") != nullptr) {
    auto doc =
        ClobDocFor(e, "side_order", "order/@id", "order_id", p.order_id);
    if (!doc.ok()) return std::vector<std::string>{};
    return QueryLines(e, *doc, "$input/shipping/ship_address");
  }
  auto doc = ClobDocFor(e, "side_article", "article/@id", "article_id",
                        p.article_id);
  if (!doc.ok()) return std::vector<std::string>{};
  return QueryLines(e, *doc, "$input/prolog/abstract");
}

Result<std::vector<std::string>> ClobQ14(ClobEngine& e,
                                         const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  std::vector<std::string> out;
  if (e.side_tables().FindTable("side_order") != nullptr) {
    XBENCH_ASSIGN_OR_RETURN(Table * orders,
                            Find(e.side_tables(), "side_order"));
    XBENCH_ASSIGN_OR_RETURN(Table * lines,
                            Find(e.side_tables(), "side_order_line"));
    std::set<std::string> docs;
    lines->Scan([&](storage::RecordId, const Row& row) {
      if (ColNull(*lines, row, "comments")) docs.insert(row[kDoc].ToText());
      return true;
    });
    auto period = InPeriod(*orders, "order_date", p);
    orders->Scan([&](storage::RecordId, const Row& row) {
      if (period(row) && docs.count(row[kDoc].ToText()) != 0) {
        out.push_back(ColText(*orders, row, "order_id"));
      }
      return true;
    });
    return out;
  }
  XBENCH_ASSIGN_OR_RETURN(Table * articles,
                          Find(e.side_tables(), "side_article"));
  XBENCH_ASSIGN_OR_RETURN(Table * keywords,
                          Find(e.side_tables(), "side_keyword"));
  std::set<std::string> docs_with_keywords;
  keywords->Scan([&](storage::RecordId, const Row& row) {
    docs_with_keywords.insert(row[kDoc].ToText());
    return true;
  });
  auto period = InPeriod(*articles, "date", p);
  articles->Scan([&](storage::RecordId, const Row& row) {
    if (period(row) && docs_with_keywords.count(row[kDoc].ToText()) == 0) {
      out.push_back(ColText(*articles, row, "title"));
    }
    return true;
  });
  return out;
}

Result<std::vector<std::string>> ClobQ17(ClobEngine& e,
                                         const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  std::vector<std::string> out;
  const std::string& word = p.search_word;
  if (e.side_tables().FindTable("side_order") != nullptr) {
    XBENCH_ASSIGN_OR_RETURN(Table * orders,
                            Find(e.side_tables(), "side_order"));
    XBENCH_ASSIGN_OR_RETURN(Table * lines,
                            Find(e.side_tables(), "side_order_line"));
    std::set<std::string> docs;
    lines->Scan([&](storage::RecordId, const Row& row) {
      if (!ColNull(*lines, row, "comments") &&
          ContainsWord(ColText(*lines, row, "comments"), word)) {
        docs.insert(row[kDoc].ToText());
      }
      return true;
    });
    orders->Scan([&](storage::RecordId, const Row& row) {
      if (docs.count(row[kDoc].ToText()) != 0) {
        out.push_back(ColText(*orders, row, "order_id"));
      }
      return true;
    });
    return out;
  }
  XBENCH_ASSIGN_OR_RETURN(Table * articles,
                          Find(e.side_tables(), "side_article"));
  XBENCH_ASSIGN_OR_RETURN(Table * paras, Find(e.side_tables(), "side_para"));
  std::set<std::string> docs;
  paras->Scan([&](storage::RecordId, const Row& row) {
    if (!ColNull(*paras, row, "text") &&
        ContainsWord(ColText(*paras, row, "text"), word)) {
      docs.insert(row[kDoc].ToText());
    }
    return true;
  });
  articles->Scan([&](storage::RecordId, const Row& row) {
    if (docs.count(row[kDoc].ToText()) != 0) {
      out.push_back(ColText(*articles, row, "title"));
    }
    return true;
  });
  return out;
}

// ---------------------------------------------------------------------
// Extended Xcolumn plans: side-table filtering + full XQuery over fetched
// CLOBs.
// ---------------------------------------------------------------------

/// Runs the native query text over each named document and concatenates
/// the answers (Xcolumn's extract-from-CLOB execution model).
Result<std::vector<std::string>> ClobQueryDocs(
    ClobEngine& e, const std::vector<std::string>& docs,
    const std::string& xquery)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  std::vector<std::string> out;
  for (const std::string& doc : docs) {
    XBENCH_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                            QueryLines(e, doc, xquery));
    out.insert(out.end(), lines.begin(), lines.end());
  }
  return out;
}

Result<std::vector<std::string>> ClobExtended(ClobEngine& e, QueryId id,
                                              datagen::DbClass cls,
                                              const QueryParams& p)
    XBENCH_REQUIRES_SHARED(e.collection_mu()) {
  auto& db = e.side_tables();
  switch (id) {
    case QueryId::kQ2:
    case QueryId::kQ4: {
      XBENCH_ASSIGN_OR_RETURN(Table * authors, Find(db, "side_author"));
      std::set<std::string> doc_set;
      authors->Scan([&](storage::RecordId, const Row& row) {
        if (ColText(*authors, row, "name") == p.author) {
          doc_set.insert(row[kDoc].ToText());
        }
        return true;
      });
      return ClobQueryDocs(e, {doc_set.begin(), doc_set.end()},
                           XQueryFor(id, cls, p));
    }
    case QueryId::kQ6:
    case QueryId::kQ18: {
      XBENCH_ASSIGN_OR_RETURN(Table * paras, Find(db, "side_para"));
      std::set<std::string> doc_set;
      paras->Scan([&](storage::RecordId, const Row& row) {
        const std::string text = ColText(*paras, row, "text");
        const bool hit =
            id == QueryId::kQ6
                ? ContainsWord(text, p.keyword1) &&
                      ContainsWord(text, p.keyword2)
                : ContainsPhrase(text, p.phrase);
        if (hit) doc_set.insert(row[kDoc].ToText());
        return true;
      });
      return ClobQueryDocs(e, {doc_set.begin(), doc_set.end()},
                           XQueryFor(id, cls, p));
    }
    case QueryId::kQ9: {
      XBENCH_ASSIGN_OR_RETURN(Table * orders, Find(db, "side_order"));
      std::vector<std::string> out;
      for (const Row& row :
           ValueLookup(*orders, "order/@id", "order_id", p.order_id)) {
        out.push_back(ColText(*orders, row, "status"));
      }
      return out;
    }
    case QueryId::kQ10: {
      XBENCH_ASSIGN_OR_RETURN(Table * orders, Find(db, "side_order"));
      RowSet rows =
          relational::SeqScan(*orders, InPeriod(*orders, "order_date", p));
      relational::SortRows(rows, {{Col(*orders, "ship_type"), true, false}});
      std::vector<std::string> out;
      for (const Row& row : rows) {
        out.push_back("<o><id>" +
                      xml::EscapeText(ColText(*orders, row, "order_id")) +
                      "</id><date>" +
                      xml::EscapeText(ColText(*orders, row, "order_date")) +
                      "</date><ship>" +
                      xml::EscapeText(ColText(*orders, row, "ship_type")) +
                      "</ship></o>");
      }
      return out;
    }
    case QueryId::kQ13: {
      auto doc = ClobDocFor(e, "side_article", "article/@id", "article_id",
                            p.article_id);
      if (!doc.ok()) return std::vector<std::string>{};
      return ClobQueryDocs(e, {*doc}, XQueryFor(id, cls, p));
    }
    case QueryId::kQ15: {
      XBENCH_ASSIGN_OR_RETURN(Table * authors, Find(db, "side_author"));
      XBENCH_ASSIGN_OR_RETURN(Table * articles, Find(db, "side_article"));
      std::map<std::string, std::string> doc_date =
          DocColumn(*articles, "date");
      std::vector<std::string> out;
      const int contact_idx = Col(*authors, "contact");
      authors->Scan([&](storage::RecordId, const Row& row) {
        const Value& contact = row[static_cast<size_t>(contact_idx)];
        if (contact.is_null() || !contact.AsString().empty()) return true;
        auto it = doc_date.find(row[kDoc].ToText());
        if (it == doc_date.end() || it->second < p.date_lo ||
            it->second > p.date_hi) {
          return true;
        }
        out.push_back(WrapTag("name", ColText(*authors, row, "name")));
        return true;
      });
      return out;
    }
    case QueryId::kQ16: {
      auto doc =
          ClobDocFor(e, "side_order", "order/@id", "order_id", p.order_id);
      if (!doc.ok()) return std::vector<std::string>{};
      XBENCH_ASSIGN_OR_RETURN(std::string raw, e.FetchRaw(*doc));
      return std::vector<std::string>{std::move(raw)};
    }
    case QueryId::kQ19: {
      XBENCH_ASSIGN_OR_RETURN(Table * orders, Find(db, "side_order"));
      XBENCH_ASSIGN_OR_RETURN(Table * customers, Find(db, "side_customer"));
      RowSet hits =
          ValueLookup(*orders, "order/@id", "order_id", p.order_id);
      if (hits.empty()) return std::vector<std::string>{};
      const std::string customer_id =
          ColText(*orders, hits[0], "customer_id");
      const std::string status = ColText(*orders, hits[0], "status");
      std::vector<std::string> out;
      customers->Scan([&](storage::RecordId, const Row& row) {
        if (ColText(*customers, row, "customer_id") != customer_id) {
          return true;
        }
        out.push_back(
            "<r><name>" +
            xml::EscapeText(ColText(*customers, row, "first_name") + " " +
                            ColText(*customers, row, "last_name")) +
            "</name><phone>" +
            xml::EscapeText(ColText(*customers, row, "phone")) +
            "</phone><status>" + xml::EscapeText(status) + "</status></r>");
        return true;
      });
      return out;
    }
    default:
      return Status::Unsupported(std::string(QueryName(id)) +
                                 " has no Xcolumn plan");
  }
}

}  // namespace

Result<std::vector<std::string>> RunShredQuery(ShredEngine& engine,
                                               QueryId id,
                                               const QueryParams& params) {
  // A query undefined for this class is unsupported per §2.2.
  if (XQueryFor(id, engine.db_class(), params).empty()) {
    return Status::Unsupported(std::string(QueryName(id)) +
                               " is not defined for " +
                               datagen::DbClassName(engine.db_class()));
  }
  switch (id) {
    case QueryId::kQ1:
      return ShredQ1(engine, params);
    case QueryId::kQ2:
      return ShredQ2(engine, params);
    case QueryId::kQ3:
      return ShredQ3(engine, params);
    case QueryId::kQ4:
      // Relative document order is not representable after shredding
      // (§3.1.3 problem 2) — the honest answer is "unsupported".
      return Status::Unsupported(
          "Q4 requires document order, which the shredded mapping does not "
          "maintain");
    case QueryId::kQ5:
      return ShredQ5(engine, params);
    case QueryId::kQ6:
      return ShredQ6(engine, params);
    case QueryId::kQ7:
      return ShredQ7(engine, params);
    case QueryId::kQ8:
      return ShredQ8(engine, params);
    case QueryId::kQ9:
      return ShredQ9(engine, params);
    case QueryId::kQ10:
      return ShredQ10(engine, params);
    case QueryId::kQ11:
      return ShredQ11(engine, params);
    case QueryId::kQ12:
      return ShredQ12(engine, params);
    case QueryId::kQ13:
      return ShredQ13(engine, params);
    case QueryId::kQ14:
      return ShredQ14(engine, params);
    case QueryId::kQ15:
      return ShredQ15(engine, params);
    case QueryId::kQ16:
      return ShredQ16(engine, params);
    case QueryId::kQ17:
      return ShredQ17(engine, params);
    case QueryId::kQ18:
      return ShredQ18(engine, params);
    case QueryId::kQ19:
      return ShredQ19(engine, params);
    case QueryId::kQ20:
      return ShredQ20(engine, params);
  }
  return Status::Internal("unhandled query id");
}

Result<std::vector<std::string>> RunClobQuery(ClobEngine& engine, QueryId id,
                                              const QueryParams& params) {
  if (engine.side_dad().tables.empty()) {
    return Status::Unsupported("Xcolumn hosts only the MD classes");
  }
  const bool is_orders =
      engine.side_tables().FindTable("side_order") != nullptr;
  const datagen::DbClass cls =
      is_orders ? datagen::DbClass::kDcMd : datagen::DbClass::kTcMd;
  if (XQueryFor(id, cls, params).empty()) {
    return Status::Unsupported(std::string(QueryName(id)) +
                               " is not defined for " +
                               datagen::DbClassName(cls));
  }
  switch (id) {
    case QueryId::kQ5:
      return ClobQ5(engine, params);
    case QueryId::kQ8:
      return ClobQ8(engine, params);
    case QueryId::kQ12:
      return ClobQ12(engine, params);
    case QueryId::kQ14:
      return ClobQ14(engine, params);
    case QueryId::kQ17:
      return ClobQ17(engine, params);
    default:
      return ClobExtended(engine, id, cls, params);
  }
}

}  // namespace xbench::workload
