#ifndef XBENCH_WORKLOAD_CLASSES_H_
#define XBENCH_WORKLOAD_CLASSES_H_

#include <vector>

#include "datagen/generator.h"
#include "engines/dbms.h"

namespace xbench::workload {

/// All four database classes (Table 1), in the paper's column order.
const std::vector<datagen::DbClass>& AllClasses();

/// The paper's three reported scales.
enum class Scale { kSmall, kNormal, kLarge };
const char* ScaleName(Scale scale);
const std::vector<Scale>& AllScales();

/// The value indexes of Table 3 for a class (names equal their paths).
std::vector<engines::IndexSpec> Table3Indexes(datagen::DbClass db_class);

/// Database instance naming like the paper's TCSDS/TCSDN/TCSDL.
std::string InstanceName(datagen::DbClass db_class, Scale scale);

}  // namespace xbench::workload

#endif  // XBENCH_WORKLOAD_CLASSES_H_
