#ifndef XBENCH_STORAGE_DISK_H_
#define XBENCH_STORAGE_DISK_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/stopwatch.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/page.h"

namespace xbench::storage {

/// Latency model for the simulated disk. The defaults approximate the
/// paper's 2003-era 60 GB IDE disk: a page-sized random read costs a few
/// hundred microseconds once the request mix is cached by the OS;
/// sequential accesses are modelled cheaper than random ones.
struct DiskProfile {
  uint64_t random_read_micros = 400;
  uint64_t sequential_read_micros = 40;
  uint64_t write_micros = 80;
};

/// In-memory page store that charges a VirtualClock for every page access,
/// standing in for the testbed disk. "Sequential" is detected as accessing
/// page N+1 immediately after page N.
///
/// Thread safety: page transfers serialize on an internal mutex (one disk
/// arm), the clock advances atomically, and every access is attributed to
/// the calling thread's ThreadIoCounters in addition to the engine-lifetime
/// totals below — so concurrent sessions keep exact per-session I/O stats.
class SimulatedDisk {
 public:
  explicit SimulatedDisk(DiskProfile profile = {});

  /// Appends a zeroed page, returning its id.
  PageId Allocate();

  size_t PageCount() const {
    MutexLock lock(mu_);
    return pages_.size();
  }

  /// Reads `page_id` into `out`, charging read latency.
  void ReadPage(PageId page_id, Page& out);

  /// Writes `page` to `page_id`, charging write latency.
  void WritePage(PageId page_id, const Page& page);

  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }

  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  uint64_t bytes_read() const { return reads() * kPageSize; }
  uint64_t bytes_written() const { return writes() * kPageSize; }

  /// Bytes occupied by allocated pages.
  size_t SizeBytes() const { return PageCount() * kPageSize; }

 private:
  DiskProfile profile_;
  mutable Mutex mu_{LockRank::kDisk, "disk"};  // the single disk arm
  std::vector<std::unique_ptr<Page>> pages_ XBENCH_GUARDED_BY(mu_);
  VirtualClock clock_;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  PageId last_accessed_ XBENCH_GUARDED_BY(mu_) = static_cast<PageId>(-2);
  // Process-wide metrics (xbench.disk.*); per-disk attribution uses the
  // reads()/writes() accessors above.
  obs::Counter& metric_reads_;
  obs::Counter& metric_writes_;
  obs::Counter& metric_bytes_read_;
  obs::Counter& metric_bytes_written_;
};

}  // namespace xbench::storage

#endif  // XBENCH_STORAGE_DISK_H_
