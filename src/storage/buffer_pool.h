#ifndef XBENCH_STORAGE_BUFFER_POOL_H_
#define XBENCH_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/sync.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/disk.h"
#include "storage/page.h"

namespace xbench::storage {

/// Snapshot of a BufferPool's activity counters. Deltas between two
/// snapshots attribute pool traffic to one measured operation (for
/// concurrent sessions, capture per-thread deltas via ThisThreadIo()
/// instead — these totals cover the whole pool lifetime).
struct PoolCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;  // dirty frames written back (evict or flush)
};

/// LRU buffer pool over a SimulatedDisk, latch-sharded by page id.
///
/// Thread safety: frames are partitioned into shards keyed by
/// `page_id % shard_count()`; each shard owns a mutex, its frame map and
/// its LRU list, so sessions touching different pages proceed in
/// parallel. The latched accessors ReadAt()/WriteAt() copy bytes while
/// holding the shard latch and are the only frame access paths that are
/// safe under concurrency; Fetch()/MarkDirty() remain for single-threaded
/// callers (the returned frame reference is unprotected by design).
///
/// Small pools (tests with hand-counted eviction sequences) get exactly
/// one shard, preserving strict global LRU order; benchmark-sized pools
/// shard 16 ways, each shard running LRU over capacity/16 frames.
class BufferPool {
 public:
  /// `capacity_pages` frames; the paper's testbed had 1 GB of RAM against
  /// up-to-1 GB databases, so the pool should comfortably hold the small
  /// database and progressively thrash on normal/large.
  BufferPool(SimulatedDisk& disk, size_t capacity_pages);

  /// Copies `size` bytes at `offset` within `page_id` into `dst`, reading
  /// the page from disk on a miss. Holds the page's shard latch for the
  /// duration of the copy — safe under concurrency.
  void ReadAt(PageId page_id, size_t offset, void* dst, size_t size);

  /// Copies `size` bytes from `src` into `page_id` at `offset` and marks
  /// the frame dirty, under the shard latch.
  void WriteAt(PageId page_id, size_t offset, const void* src, size_t size);

  /// Returns the frame for `page_id`, reading from disk on a miss. The
  /// returned pointer is valid until the next Fetch/Release call.
  /// Single-threaded callers only: the reference escapes the shard latch.
  Page& Fetch(PageId page_id);

  /// Marks the frame dirty so eviction writes it back.
  void MarkDirty(PageId page_id);

  /// Writes all dirty frames back to disk.
  void FlushAll();

  /// Cold restart: flush then drop every frame. Benchmarks call this before
  /// each measured query to reproduce the paper's cold-run methodology.
  /// Counters are NOT reset — per-operation statistics come from
  /// per-thread deltas (ThisThreadIo), so engine-lifetime totals here stay
  /// monotonic even when sessions restart a shared engine.
  void ColdRestart();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t writebacks() const {
    return writebacks_.load(std::memory_order_relaxed);
  }
  PoolCounters counters() const {
    return {hits(), misses(), evictions(), writebacks()};
  }

  /// Zeroes the activity counters (frames are untouched).
  void ResetCounters();

  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shard_count_; }

 private:
  struct Frame {
    Page page;
    bool dirty = false;
    std::list<PageId>::iterator lru_pos;
  };

  /// One latch domain: a mutex plus the frames and LRU order it guards.
  struct Shard {
    Mutex mu{LockRank::kPoolShard, "pool.shard"};
    std::unordered_map<PageId, Frame> frames XBENCH_GUARDED_BY(mu);
    std::list<PageId> lru XBENCH_GUARDED_BY(mu);  // front = most recently used
  };

  Shard& ShardFor(PageId page_id) {
    return shards_[page_id % shard_count_];
  }

  /// Returns the frame for `page_id` within `shard`; caller holds the
  /// shard latch. Reads from disk on a miss, evicting first if the shard
  /// is at capacity.
  Frame& FetchLocked(Shard& shard, PageId page_id) XBENCH_REQUIRES(shard.mu);

  void EvictIfFullLocked(Shard& shard) XBENCH_REQUIRES(shard.mu);
  void WriteBackLocked(Shard& shard, PageId page_id, Frame& frame)
      XBENCH_REQUIRES(shard.mu);

  SimulatedDisk& disk_;
  size_t capacity_;
  size_t shard_count_;
  size_t shard_capacity_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> writebacks_{0};
  // Process-wide metrics (xbench.pool.*).
  obs::Counter& metric_hits_;
  obs::Counter& metric_misses_;
  obs::Counter& metric_evictions_;
  obs::Counter& metric_writebacks_;
};

}  // namespace xbench::storage

#endif  // XBENCH_STORAGE_BUFFER_POOL_H_
