#ifndef XBENCH_STORAGE_BUFFER_POOL_H_
#define XBENCH_STORAGE_BUFFER_POOL_H_

#include <list>
#include <unordered_map>

#include "obs/metrics.h"
#include "storage/disk.h"
#include "storage/page.h"

namespace xbench::storage {

/// Snapshot of a BufferPool's activity counters. Deltas between two
/// snapshots attribute pool traffic to one measured operation.
struct PoolCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;  // dirty frames written back (evict or flush)
};

/// LRU buffer pool over a SimulatedDisk. Single-threaded; no pin counting
/// is needed because callers copy data out of the frame before the next
/// Fetch (the engines never hold frame pointers across pool calls).
class BufferPool {
 public:
  /// `capacity_pages` frames; the paper's testbed had 1 GB of RAM against
  /// up-to-1 GB databases, so the pool should comfortably hold the small
  /// database and progressively thrash on normal/large.
  BufferPool(SimulatedDisk& disk, size_t capacity_pages);

  /// Returns the frame for `page_id`, reading from disk on a miss. The
  /// returned pointer is valid until the next Fetch/Release call.
  Page& Fetch(PageId page_id);

  /// Marks the frame dirty so eviction writes it back.
  void MarkDirty(PageId page_id);

  /// Writes all dirty frames back to disk.
  void FlushAll();

  /// Cold restart: flush then drop every frame. Benchmarks call this before
  /// each measured query to reproduce the paper's cold-run methodology.
  /// Counters are NOT reset here — XmlDbms::ColdRestart() does that, so
  /// per-query pool statistics start from zero after each restart.
  void ColdRestart();

  uint64_t hits() const { return counters_.hits; }
  uint64_t misses() const { return counters_.misses; }
  uint64_t evictions() const { return counters_.evictions; }
  uint64_t writebacks() const { return counters_.writebacks; }
  PoolCounters counters() const { return counters_; }

  /// Zeroes the activity counters (frames are untouched).
  void ResetCounters() { counters_ = {}; }

  size_t capacity() const { return capacity_; }

 private:
  struct Frame {
    Page page;
    bool dirty = false;
    std::list<PageId>::iterator lru_pos;
  };

  void EvictIfFull();
  void WriteBack(PageId page_id, Frame& frame);

  SimulatedDisk& disk_;
  size_t capacity_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recently used
  PoolCounters counters_;
  // Process-wide metrics (xbench.pool.*).
  obs::Counter& metric_hits_;
  obs::Counter& metric_misses_;
  obs::Counter& metric_evictions_;
  obs::Counter& metric_writebacks_;
};

}  // namespace xbench::storage

#endif  // XBENCH_STORAGE_BUFFER_POOL_H_
