#ifndef XBENCH_STORAGE_BUFFER_POOL_H_
#define XBENCH_STORAGE_BUFFER_POOL_H_

#include <list>
#include <unordered_map>

#include "storage/disk.h"
#include "storage/page.h"

namespace xbench::storage {

/// LRU buffer pool over a SimulatedDisk. Single-threaded; no pin counting
/// is needed because callers copy data out of the frame before the next
/// Fetch (the engines never hold frame pointers across pool calls).
class BufferPool {
 public:
  /// `capacity_pages` frames; the paper's testbed had 1 GB of RAM against
  /// up-to-1 GB databases, so the pool should comfortably hold the small
  /// database and progressively thrash on normal/large.
  BufferPool(SimulatedDisk& disk, size_t capacity_pages)
      : disk_(disk), capacity_(capacity_pages) {}

  /// Returns the frame for `page_id`, reading from disk on a miss. The
  /// returned pointer is valid until the next Fetch/Release call.
  Page& Fetch(PageId page_id);

  /// Marks the frame dirty so eviction writes it back.
  void MarkDirty(PageId page_id);

  /// Writes all dirty frames back to disk.
  void FlushAll();

  /// Cold restart: flush then drop every frame. Benchmarks call this before
  /// each measured query to reproduce the paper's cold-run methodology.
  void ColdRestart();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t capacity() const { return capacity_; }

 private:
  struct Frame {
    Page page;
    bool dirty = false;
    std::list<PageId>::iterator lru_pos;
  };

  void EvictIfFull();

  SimulatedDisk& disk_;
  size_t capacity_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recently used
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace xbench::storage

#endif  // XBENCH_STORAGE_BUFFER_POOL_H_
