#include "storage/disk.h"

#include <cassert>

namespace xbench::storage {

SimulatedDisk::SimulatedDisk(DiskProfile profile)
    : profile_(profile),
      metric_reads_(
          obs::MetricsRegistry::Default().GetCounter("xbench.disk.page_reads")),
      metric_writes_(obs::MetricsRegistry::Default().GetCounter(
          "xbench.disk.page_writes")),
      metric_bytes_read_(
          obs::MetricsRegistry::Default().GetCounter("xbench.disk.bytes_read")),
      metric_bytes_written_(obs::MetricsRegistry::Default().GetCounter(
          "xbench.disk.bytes_written")) {}

PageId SimulatedDisk::Allocate() {
  pages_.push_back(std::make_unique<Page>());
  return pages_.size() - 1;
}

void SimulatedDisk::ReadPage(PageId page_id, Page& out) {
  assert(page_id < pages_.size());
  const bool sequential = page_id == last_accessed_ + 1;
  clock_.AdvanceMicros(sequential ? profile_.sequential_read_micros
                                  : profile_.random_read_micros);
  last_accessed_ = page_id;
  ++reads_;
  metric_reads_.Increment();
  metric_bytes_read_.Increment(kPageSize);
  out = *pages_[page_id];
}

void SimulatedDisk::WritePage(PageId page_id, const Page& page) {
  assert(page_id < pages_.size());
  clock_.AdvanceMicros(profile_.write_micros);
  last_accessed_ = page_id;
  ++writes_;
  metric_writes_.Increment();
  metric_bytes_written_.Increment(kPageSize);
  *pages_[page_id] = page;
}

}  // namespace xbench::storage
