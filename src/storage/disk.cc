#include "storage/disk.h"

#include <cassert>

namespace xbench::storage {

PageId SimulatedDisk::Allocate() {
  pages_.push_back(std::make_unique<Page>());
  return pages_.size() - 1;
}

void SimulatedDisk::ReadPage(PageId page_id, Page& out) {
  assert(page_id < pages_.size());
  const bool sequential = page_id == last_accessed_ + 1;
  clock_.AdvanceMicros(sequential ? profile_.sequential_read_micros
                                  : profile_.random_read_micros);
  last_accessed_ = page_id;
  ++reads_;
  out = *pages_[page_id];
}

void SimulatedDisk::WritePage(PageId page_id, const Page& page) {
  assert(page_id < pages_.size());
  clock_.AdvanceMicros(profile_.write_micros);
  last_accessed_ = page_id;
  ++writes_;
  *pages_[page_id] = page;
}

}  // namespace xbench::storage
