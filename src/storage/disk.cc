#include "storage/disk.h"

#include <cassert>

#include "common/thread_io.h"

namespace xbench::storage {

SimulatedDisk::SimulatedDisk(DiskProfile profile)
    : profile_(profile),
      metric_reads_(
          obs::MetricsRegistry::Default().GetCounter("xbench.disk.page_reads")),
      metric_writes_(obs::MetricsRegistry::Default().GetCounter(
          "xbench.disk.page_writes")),
      metric_bytes_read_(
          obs::MetricsRegistry::Default().GetCounter("xbench.disk.bytes_read")),
      metric_bytes_written_(obs::MetricsRegistry::Default().GetCounter(
          "xbench.disk.bytes_written")) {}

PageId SimulatedDisk::Allocate() {
  MutexLock lock(mu_);
  pages_.push_back(std::make_unique<Page>());
  return pages_.size() - 1;
}

void SimulatedDisk::ReadPage(PageId page_id, Page& out) {
  uint64_t charge = 0;
  {
    MutexLock lock(mu_);
    assert(page_id < pages_.size());
    const bool sequential = page_id == last_accessed_ + 1;
    charge = sequential ? profile_.sequential_read_micros
                        : profile_.random_read_micros;
    last_accessed_ = page_id;
    out = *pages_[page_id];
  }
  clock_.AdvanceMicros(charge);
  reads_.fetch_add(1, std::memory_order_relaxed);
  metric_reads_.Increment();
  metric_bytes_read_.Increment(kPageSize);
  ThreadIoCounters& mine = ThisThreadIo();
  ++mine.disk_page_reads;
  mine.disk_bytes_read += kPageSize;
}

void SimulatedDisk::WritePage(PageId page_id, const Page& page) {
  {
    MutexLock lock(mu_);
    assert(page_id < pages_.size());
    last_accessed_ = page_id;
    *pages_[page_id] = page;
  }
  clock_.AdvanceMicros(profile_.write_micros);
  writes_.fetch_add(1, std::memory_order_relaxed);
  metric_writes_.Increment();
  metric_bytes_written_.Increment(kPageSize);
  ThreadIoCounters& mine = ThisThreadIo();
  ++mine.disk_page_writes;
  mine.disk_bytes_written += kPageSize;
}

}  // namespace xbench::storage
