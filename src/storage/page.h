#ifndef XBENCH_STORAGE_PAGE_H_
#define XBENCH_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace xbench::storage {

/// Fixed page size shared by every engine's storage (8 KiB, a common DBMS
/// default).
inline constexpr size_t kPageSize = 8192;

using PageId = uint64_t;

/// A raw page of bytes. Pages are the unit of simulated I/O accounting.
struct Page {
  std::array<uint8_t, kPageSize> bytes{};

  void Write(size_t offset, const void* data, size_t size) {
    std::memcpy(bytes.data() + offset, data, size);
  }
  void Read(size_t offset, void* data, size_t size) const {
    std::memcpy(data, bytes.data() + offset, size);
  }
};

}  // namespace xbench::storage

#endif  // XBENCH_STORAGE_PAGE_H_
