#include "storage/heap_file.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace xbench::storage {

PageId HeapFile::PageForOffset(uint64_t offset, bool grow) {
  const uint64_t page_index = offset / kPageSize;
  if (grow) {
    while (page_index >= pages_.size()) {
      pages_.push_back(disk_.Allocate());
    }
  }
  assert(page_index < pages_.size());
  return pages_[page_index];
}

void HeapFile::WriteBytes(uint64_t offset, const void* data, size_t size) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  while (size > 0) {
    const size_t in_page = offset % kPageSize;
    const size_t chunk = std::min(size, kPageSize - in_page);
    pool_->WriteAt(PageForOffset(offset, /*grow=*/true), in_page, src, chunk);
    src += chunk;
    offset += chunk;
    size -= chunk;
  }
}

void HeapFile::ReadBytes(uint64_t offset, void* data, size_t size) {
  uint8_t* dst = static_cast<uint8_t*>(data);
  while (size > 0) {
    const size_t in_page = offset % kPageSize;
    const size_t chunk = std::min(size, kPageSize - in_page);
    pool_->ReadAt(PageForOffset(offset, /*grow=*/false), in_page, dst, chunk);
    dst += chunk;
    offset += chunk;
    size -= chunk;
  }
}

RecordId HeapFile::Append(std::string_view payload) {
  const RecordId id = end_offset_;
  const uint32_t length = static_cast<uint32_t>(payload.size());
  WriteBytes(end_offset_, &length, sizeof(length));
  WriteBytes(end_offset_ + sizeof(length), payload.data(), payload.size());
  end_offset_ += sizeof(length) + payload.size();
  ++record_count_;
  return id;
}

std::string HeapFile::Read(RecordId id) {
  uint32_t length = 0;
  ReadBytes(id, &length, sizeof(length));
  std::string payload(length, '\0');
  ReadBytes(id + sizeof(length), payload.data(), length);
  return payload;
}

void HeapFile::Scan(
    const std::function<bool(RecordId, std::string_view)>& visit) {
  uint64_t offset = 0;
  while (offset < end_offset_) {
    uint32_t length = 0;
    ReadBytes(offset, &length, sizeof(length));
    std::string payload(length, '\0');
    ReadBytes(offset + sizeof(length), payload.data(), length);
    if (!visit(offset, payload)) return;
    offset += sizeof(length) + length;
  }
}

}  // namespace xbench::storage
