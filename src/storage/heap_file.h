#ifndef XBENCH_STORAGE_HEAP_FILE_H_
#define XBENCH_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/buffer_pool.h"

namespace xbench::storage {

/// Byte offset of a record within a heap file; doubles as the record id.
using RecordId = uint64_t;

/// Append-only record file over the buffer pool. Records are stored as a
/// contiguous byte log ([u32 length][payload]) spanning page boundaries,
/// so a record read touches ceil(bytes/page) pages — large documents cost
/// proportionally more I/O, which is what the benchmark measures.
///
/// The workload is load-then-query (the paper defers updates to future
/// versions), so deletion/update support is intentionally absent.
///
/// Thread safety: Read()/Scan() go through the pool's latched ReadAt()
/// path and may run from any number of threads concurrently. Append()
/// mutates the page directory and file extent and requires exclusive
/// access — the engines guarantee this by taking their collection lock
/// exclusively around all load/insert paths.
class HeapFile {
 public:
  explicit HeapFile(SimulatedDisk& disk, BufferPool& pool)
      : disk_(disk), pool_(&pool) {}

  /// Appends a record and returns its id. Requires exclusive access.
  RecordId Append(std::string_view payload);

  /// Reads the record at `id`. Safe to call concurrently.
  std::string Read(RecordId id);

  /// Sequentially visits every record in append order. The callback gets
  /// (id, payload); returning false stops the scan early. Safe to call
  /// concurrently.
  void Scan(const std::function<bool(RecordId, std::string_view)>& visit);

  uint64_t record_count() const { return record_count_; }
  uint64_t size_bytes() const { return end_offset_; }

 private:
  /// Translates a byte offset to its page id, allocating pages on demand
  /// when `grow` is set (write path only).
  PageId PageForOffset(uint64_t offset, bool grow);

  void WriteBytes(uint64_t offset, const void* data, size_t size);
  void ReadBytes(uint64_t offset, void* data, size_t size);

  SimulatedDisk& disk_;
  BufferPool* pool_;
  uint64_t end_offset_ = 0;
  uint64_t record_count_ = 0;
  // Page ids are allocated from the shared disk, so this file's pages need
  // an explicit index (they are not necessarily contiguous on the disk).
  std::vector<PageId> pages_;
};

}  // namespace xbench::storage

#endif  // XBENCH_STORAGE_HEAP_FILE_H_
