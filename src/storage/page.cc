#include "storage/page.h"

// Header-only; this translation unit anchors the header in the library.
