#include "storage/buffer_pool.h"

#include "common/thread_io.h"

namespace xbench::storage {

namespace {

/// Pools below this size keep one shard so tests with hand-counted
/// eviction orders see strict global LRU; larger pools shard 16 ways.
constexpr size_t kShardThresholdPages = 512;
constexpr size_t kMaxShards = 16;

size_t PickShardCount(size_t capacity_pages) {
  return capacity_pages >= kShardThresholdPages ? kMaxShards : 1;
}

}  // namespace

BufferPool::BufferPool(SimulatedDisk& disk, size_t capacity_pages)
    : disk_(disk),
      capacity_(capacity_pages),
      shard_count_(PickShardCount(capacity_pages)),
      shard_capacity_(capacity_pages / shard_count_),
      shards_(std::make_unique<Shard[]>(shard_count_)),
      metric_hits_(
          obs::MetricsRegistry::Default().GetCounter("xbench.pool.hits")),
      metric_misses_(
          obs::MetricsRegistry::Default().GetCounter("xbench.pool.misses")),
      metric_evictions_(
          obs::MetricsRegistry::Default().GetCounter("xbench.pool.evictions")),
      metric_writebacks_(obs::MetricsRegistry::Default().GetCounter(
          "xbench.pool.writebacks")) {}

BufferPool::Frame& BufferPool::FetchLocked(Shard& shard, PageId page_id) {
  auto it = shard.frames.find(page_id);
  if (it != shard.frames.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    metric_hits_.Increment();
    ++ThisThreadIo().pool_hits;
    shard.lru.erase(it->second.lru_pos);
    shard.lru.push_front(page_id);
    it->second.lru_pos = shard.lru.begin();
    return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  metric_misses_.Increment();
  ++ThisThreadIo().pool_misses;
  EvictIfFullLocked(shard);
  Frame& frame = shard.frames[page_id];
  disk_.ReadPage(page_id, frame.page);
  shard.lru.push_front(page_id);
  frame.lru_pos = shard.lru.begin();
  return frame;
}

void BufferPool::ReadAt(PageId page_id, size_t offset, void* dst,
                        size_t size) {
  Shard& shard = ShardFor(page_id);
  MutexLock latch(shard.mu);
  FetchLocked(shard, page_id).page.Read(offset, dst, size);
}

void BufferPool::WriteAt(PageId page_id, size_t offset, const void* src,
                         size_t size) {
  Shard& shard = ShardFor(page_id);
  MutexLock latch(shard.mu);
  Frame& frame = FetchLocked(shard, page_id);
  frame.page.Write(offset, src, size);
  frame.dirty = true;
}

Page& BufferPool::Fetch(PageId page_id) {
  Shard& shard = ShardFor(page_id);
  MutexLock latch(shard.mu);
  return FetchLocked(shard, page_id).page;
}

void BufferPool::MarkDirty(PageId page_id) {
  Shard& shard = ShardFor(page_id);
  MutexLock latch(shard.mu);
  auto it = shard.frames.find(page_id);
  if (it != shard.frames.end()) it->second.dirty = true;
}

void BufferPool::WriteBackLocked(Shard& /*shard: latch witness*/,
                                 PageId page_id, Frame& frame) {
  disk_.WritePage(page_id, frame.page);
  frame.dirty = false;
  writebacks_.fetch_add(1, std::memory_order_relaxed);
  metric_writebacks_.Increment();
  ++ThisThreadIo().pool_writebacks;
}

void BufferPool::FlushAll() {
  for (size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    MutexLock latch(shard.mu);
    for (auto& [page_id, frame] : shard.frames) {
      if (frame.dirty) WriteBackLocked(shard, page_id, frame);
    }
  }
}

void BufferPool::ColdRestart() {
  for (size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    MutexLock latch(shard.mu);
    for (auto& [page_id, frame] : shard.frames) {
      if (frame.dirty) WriteBackLocked(shard, page_id, frame);
    }
    shard.frames.clear();
    shard.lru.clear();
  }
}

void BufferPool::ResetCounters() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  writebacks_.store(0, std::memory_order_relaxed);
}

void BufferPool::EvictIfFullLocked(Shard& shard) {
  while (shard.frames.size() >= shard_capacity_ && !shard.lru.empty()) {
    PageId victim = shard.lru.back();
    shard.lru.pop_back();
    auto it = shard.frames.find(victim);
    if (it != shard.frames.end()) {
      if (it->second.dirty) WriteBackLocked(shard, victim, it->second);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      metric_evictions_.Increment();
      ++ThisThreadIo().pool_evictions;
      shard.frames.erase(it);
    }
  }
}

}  // namespace xbench::storage
