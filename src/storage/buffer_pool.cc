#include "storage/buffer_pool.h"

namespace xbench::storage {

Page& BufferPool::Fetch(PageId page_id) {
  auto it = frames_.find(page_id);
  if (it != frames_.end()) {
    ++hits_;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(page_id);
    it->second.lru_pos = lru_.begin();
    return it->second.page;
  }
  ++misses_;
  EvictIfFull();
  Frame& frame = frames_[page_id];
  disk_.ReadPage(page_id, frame.page);
  lru_.push_front(page_id);
  frame.lru_pos = lru_.begin();
  return frame.page;
}

void BufferPool::MarkDirty(PageId page_id) {
  auto it = frames_.find(page_id);
  if (it != frames_.end()) it->second.dirty = true;
}

void BufferPool::FlushAll() {
  for (auto& [page_id, frame] : frames_) {
    if (frame.dirty) {
      disk_.WritePage(page_id, frame.page);
      frame.dirty = false;
    }
  }
}

void BufferPool::ColdRestart() {
  FlushAll();
  frames_.clear();
  lru_.clear();
}

void BufferPool::EvictIfFull() {
  while (frames_.size() >= capacity_ && !lru_.empty()) {
    PageId victim = lru_.back();
    lru_.pop_back();
    auto it = frames_.find(victim);
    if (it != frames_.end()) {
      if (it->second.dirty) disk_.WritePage(victim, it->second.page);
      frames_.erase(it);
    }
  }
}

}  // namespace xbench::storage
