#include "storage/buffer_pool.h"

namespace xbench::storage {

BufferPool::BufferPool(SimulatedDisk& disk, size_t capacity_pages)
    : disk_(disk),
      capacity_(capacity_pages),
      metric_hits_(
          obs::MetricsRegistry::Default().GetCounter("xbench.pool.hits")),
      metric_misses_(
          obs::MetricsRegistry::Default().GetCounter("xbench.pool.misses")),
      metric_evictions_(
          obs::MetricsRegistry::Default().GetCounter("xbench.pool.evictions")),
      metric_writebacks_(obs::MetricsRegistry::Default().GetCounter(
          "xbench.pool.writebacks")) {}

Page& BufferPool::Fetch(PageId page_id) {
  auto it = frames_.find(page_id);
  if (it != frames_.end()) {
    ++counters_.hits;
    metric_hits_.Increment();
    lru_.erase(it->second.lru_pos);
    lru_.push_front(page_id);
    it->second.lru_pos = lru_.begin();
    return it->second.page;
  }
  ++counters_.misses;
  metric_misses_.Increment();
  EvictIfFull();
  Frame& frame = frames_[page_id];
  disk_.ReadPage(page_id, frame.page);
  lru_.push_front(page_id);
  frame.lru_pos = lru_.begin();
  return frame.page;
}

void BufferPool::MarkDirty(PageId page_id) {
  auto it = frames_.find(page_id);
  if (it != frames_.end()) it->second.dirty = true;
}

void BufferPool::WriteBack(PageId page_id, Frame& frame) {
  disk_.WritePage(page_id, frame.page);
  frame.dirty = false;
  ++counters_.writebacks;
  metric_writebacks_.Increment();
}

void BufferPool::FlushAll() {
  for (auto& [page_id, frame] : frames_) {
    if (frame.dirty) WriteBack(page_id, frame);
  }
}

void BufferPool::ColdRestart() {
  FlushAll();
  frames_.clear();
  lru_.clear();
}

void BufferPool::EvictIfFull() {
  while (frames_.size() >= capacity_ && !lru_.empty()) {
    PageId victim = lru_.back();
    lru_.pop_back();
    auto it = frames_.find(victim);
    if (it != frames_.end()) {
      if (it->second.dirty) WriteBack(victim, it->second);
      ++counters_.evictions;
      metric_evictions_.Increment();
      frames_.erase(it);
    }
  }
}

}  // namespace xbench::storage
