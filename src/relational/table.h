#ifndef XBENCH_RELATIONAL_TABLE_H_
#define XBENCH_RELATIONAL_TABLE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/btree.h"
#include "relational/schema.h"
#include "storage/heap_file.h"

namespace xbench::relational {

/// A heap table plus its secondary B+-tree indexes. Owned by a Database.
class Table {
 public:
  Table(std::string name, Schema schema, storage::SimulatedDisk& disk,
        storage::BufferPool& pool)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        disk_(&disk),
        file_(disk, pool) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  /// Live (non-deleted) rows.
  uint64_t row_count() const { return file_.record_count() - deleted_.size(); }
  uint64_t size_bytes() const { return file_.size_bytes(); }

  /// Validates, encodes and appends a row; maintains all indexes.
  Result<storage::RecordId> Insert(const Row& row);

  /// Deletes a row: removes its index entries and tombstones the record
  /// (heap space is not reclaimed — the workload is load/insert-heavy,
  /// per the paper's planned update extension).
  Status Delete(storage::RecordId rid);

  /// Fetches one row by record id (kNotFound for deleted rows).
  Result<Row> Fetch(storage::RecordId rid);

  /// Full scan in insertion order, skipping deleted rows; returning false
  /// stops early.
  void Scan(const std::function<bool(storage::RecordId, const Row&)>& visit);

  /// Creates a B+-tree index over `column_names` (in order). Existing rows
  /// are indexed by a full scan, like the paper's create-index-after-load.
  Status CreateIndex(const std::string& index_name,
                     const std::vector<std::string>& column_names);

  /// nullptr when absent.
  const BTreeIndex* FindIndex(const std::string& index_name) const;

  /// Builds the index key for `row` for index `index_name`.
  Key MakeKey(const std::string& index_name, const Row& row) const;

 private:
  struct IndexInfo {
    std::vector<int> column_indexes;
    std::unique_ptr<BTreeIndex> tree;
  };

  Key ExtractKey(const IndexInfo& info, const Row& row) const;

  std::string name_;
  Schema schema_;
  storage::SimulatedDisk* disk_;
  storage::HeapFile file_;
  std::map<std::string, IndexInfo> indexes_;
  std::set<storage::RecordId> deleted_;
};

/// A named collection of tables sharing one simulated disk + buffer pool —
/// one "database instance" in the paper's sense (e.g. DCSDS, TCMDN...).
class Database {
 public:
  explicit Database(storage::SimulatedDisk& disk, storage::BufferPool& pool)
      : disk_(&disk), pool_(&pool) {}

  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  storage::SimulatedDisk& disk() { return *disk_; }
  storage::BufferPool& pool() { return *pool_; }

 private:
  storage::SimulatedDisk* disk_;
  storage::BufferPool* pool_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace xbench::relational

#endif  // XBENCH_RELATIONAL_TABLE_H_
