#include "relational/schema.h"

#include <cstring>

namespace xbench::relational {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

int Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::Validate(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() == columns_[i].type) continue;
    if (row[i].type() == ValueType::kInt &&
        columns_[i].type == ValueType::kDouble) {
      continue;
    }
    return Status::InvalidArgument(
        "column '" + columns_[i].name + "' expects " +
        ValueTypeName(columns_[i].type) + " but got " +
        ValueTypeName(row[i].type()));
  }
  return Status::Ok();
}

namespace {

template <typename T>
void AppendRaw(const T& v, std::string& out) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadRaw(std::string_view& in, T& v) {
  if (in.size() < sizeof(T)) return false;
  std::memcpy(&v, in.data(), sizeof(T));
  in.remove_prefix(sizeof(T));
  return true;
}

}  // namespace

std::string EncodeRow(const Row& row) {
  std::string out;
  AppendRaw(static_cast<uint16_t>(row.size()), out);
  for (const Value& value : row) {
    out.push_back(static_cast<char>(value.type()));
    switch (value.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt:
        AppendRaw(value.AsInt(), out);
        break;
      case ValueType::kDouble:
        AppendRaw(value.AsDouble(), out);
        break;
      case ValueType::kString: {
        AppendRaw(static_cast<uint32_t>(value.AsString().size()), out);
        out += value.AsString();
        break;
      }
    }
  }
  return out;
}

Result<Row> DecodeRow(std::string_view payload) {
  uint16_t count = 0;
  if (!ReadRaw(payload, count)) {
    return Status::Corruption("row payload truncated (count)");
  }
  Row row;
  row.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    if (payload.empty()) return Status::Corruption("row payload truncated");
    const auto type = static_cast<ValueType>(payload.front());
    payload.remove_prefix(1);
    switch (type) {
      case ValueType::kNull:
        row.push_back(Value::Null());
        break;
      case ValueType::kInt: {
        int64_t v = 0;
        if (!ReadRaw(payload, v)) return Status::Corruption("truncated int");
        row.push_back(Value::Int(v));
        break;
      }
      case ValueType::kDouble: {
        double v = 0;
        if (!ReadRaw(payload, v)) return Status::Corruption("truncated double");
        row.push_back(Value::Double(v));
        break;
      }
      case ValueType::kString: {
        uint32_t len = 0;
        if (!ReadRaw(payload, len) || payload.size() < len) {
          return Status::Corruption("truncated string");
        }
        row.push_back(Value::String(std::string(payload.substr(0, len))));
        payload.remove_prefix(len);
        break;
      }
      default:
        return Status::Corruption("unknown value type tag");
    }
  }
  return row;
}

}  // namespace xbench::relational
