#ifndef XBENCH_RELATIONAL_EXEC_H_
#define XBENCH_RELATIONAL_EXEC_H_

#include <functional>
#include <string>
#include <vector>

#include "relational/table.h"

namespace xbench::relational {

/// Materialized intermediate result used by the hand-written physical plans
/// (the paper translated the XQuery workload to SQL by hand; we translate
/// it to these primitives by hand, which is the equivalent step).
using RowSet = std::vector<Row>;

/// Predicate over a row.
using RowPredicate = std::function<bool(const Row&)>;

/// Full table scan with optional filter.
RowSet SeqScan(Table& table, const RowPredicate& pred = nullptr);

/// Point lookup via a named index: all rows whose key equals `key`.
RowSet IndexLookup(Table& table, const std::string& index_name,
                   const Key& key);

/// Range scan via a named index (bounds inclusive; nullptr = unbounded).
RowSet IndexRange(Table& table, const std::string& index_name, const Key* lo,
                  const Key* hi);

/// One sort criterion. `numeric` casts the column to double before
/// comparing (Q10/Q11 distinguish string vs non-string sorts).
struct SortSpec {
  int column = 0;
  bool ascending = true;
  bool numeric = false;
};

void SortRows(RowSet& rows, const std::vector<SortSpec>& specs);

/// Hash join on single-column equality; emits left ++ right concatenated.
/// Null keys never join (SQL semantics).
RowSet HashJoin(const RowSet& left, int left_key, const RowSet& right,
                int right_key);

/// Left outer hash join; unmatched left rows are padded with NULLs.
RowSet LeftOuterHashJoin(const RowSet& left, int left_key, const RowSet& right,
                         int right_key, size_t right_arity);

/// GROUP BY `key_column` with COUNT(*): emits (key, count) rows sorted by
/// key.
RowSet GroupCount(const RowSet& rows, int key_column);

/// Projects the given columns, in order.
RowSet Project(const RowSet& rows, const std::vector<int>& columns);

/// Removes exact duplicate rows (preserving first occurrence order).
RowSet Distinct(const RowSet& rows);

}  // namespace xbench::relational

#endif  // XBENCH_RELATIONAL_EXEC_H_
