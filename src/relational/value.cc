#include "relational/value.h"

#include <cmath>

namespace xbench::relational {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

double Value::AsDouble() const {
  if (type() == ValueType::kInt) {
    return static_cast<double>(std::get<int64_t>(data_));
  }
  return std::get<double>(data_);
}

std::string Value::ToText() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble: {
      // Trim trailing zeros for stable text round-trips (12.50 -> "12.5").
      std::string s = std::to_string(std::get<double>(data_));
      while (s.size() > 1 && s.back() == '0') s.pop_back();
      if (!s.empty() && s.back() == '.') s.pop_back();
      return s;
    }
    case ValueType::kString:
      return std::get<std::string>(data_);
  }
  return "";
}

std::strong_ordering Value::Compare(const Value& other) const {
  const bool a_null = is_null();
  const bool b_null = other.is_null();
  if (a_null || b_null) {
    if (a_null && b_null) return std::strong_ordering::equal;
    return a_null ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const bool a_num = type() != ValueType::kString;
  const bool b_num = other.type() != ValueType::kString;
  if (a_num != b_num) {
    return a_num ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  if (a_num) {
    const double a = AsDouble();
    const double b = other.AsDouble();
    if (a < b) return std::strong_ordering::less;
    if (a > b) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  const int cmp = AsString().compare(other.AsString());
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

}  // namespace xbench::relational
