#include "relational/exec.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace xbench::relational {

RowSet SeqScan(Table& table, const RowPredicate& pred) {
  RowSet out;
  table.Scan([&](storage::RecordId, const Row& row) {
    if (!pred || pred(row)) out.push_back(row);
    return true;
  });
  return out;
}

RowSet IndexLookup(Table& table, const std::string& index_name,
                   const Key& key) {
  RowSet out;
  const BTreeIndex* index = table.FindIndex(index_name);
  if (index == nullptr) return out;
  for (storage::RecordId rid : index->Lookup(key)) {
    auto row = table.Fetch(rid);
    if (row.ok()) out.push_back(std::move(row).value());
  }
  return out;
}

RowSet IndexRange(Table& table, const std::string& index_name, const Key* lo,
                  const Key* hi) {
  RowSet out;
  const BTreeIndex* index = table.FindIndex(index_name);
  if (index == nullptr) return out;
  std::vector<storage::RecordId> rids;
  index->Range(lo, hi, [&rids](const Key&, storage::RecordId rid) {
    rids.push_back(rid);
    return true;
  });
  for (storage::RecordId rid : rids) {
    auto row = table.Fetch(rid);
    if (row.ok()) out.push_back(std::move(row).value());
  }
  return out;
}

void SortRows(RowSet& rows, const std::vector<SortSpec>& specs) {
  std::stable_sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
    for (const SortSpec& spec : specs) {
      const Value& va = a[static_cast<size_t>(spec.column)];
      const Value& vb = b[static_cast<size_t>(spec.column)];
      std::strong_ordering cmp = std::strong_ordering::equal;
      if (spec.numeric && !va.is_null() && !vb.is_null()) {
        const double da = va.type() == ValueType::kString
                              ? std::stod(va.AsString())
                              : va.AsDouble();
        const double db = vb.type() == ValueType::kString
                              ? std::stod(vb.AsString())
                              : vb.AsDouble();
        cmp = da < db    ? std::strong_ordering::less
              : da > db ? std::strong_ordering::greater
                        : std::strong_ordering::equal;
      } else {
        cmp = va.Compare(vb);
      }
      if (cmp == std::strong_ordering::equal) continue;
      const bool less = cmp == std::strong_ordering::less;
      return spec.ascending ? less : !less;
    }
    return false;
  });
}

namespace {
std::string HashKeyOf(const Value& v) {
  // Type-tagged text encoding; ints and doubles that compare equal map to
  // the same bucket via the numeric rendering.
  if (v.is_null()) return "\x00";
  return std::string(1, static_cast<char>(v.type())) + v.ToText();
}
}  // namespace

RowSet HashJoin(const RowSet& left, int left_key, const RowSet& right,
                int right_key) {
  std::unordered_map<std::string, std::vector<const Row*>> build;
  for (const Row& row : right) {
    const Value& key = row[static_cast<size_t>(right_key)];
    if (key.is_null()) continue;
    build[HashKeyOf(key)].push_back(&row);
  }
  RowSet out;
  for (const Row& row : left) {
    const Value& key = row[static_cast<size_t>(left_key)];
    if (key.is_null()) continue;
    auto it = build.find(HashKeyOf(key));
    if (it == build.end()) continue;
    for (const Row* match : it->second) {
      Row joined = row;
      joined.insert(joined.end(), match->begin(), match->end());
      out.push_back(std::move(joined));
    }
  }
  return out;
}

RowSet LeftOuterHashJoin(const RowSet& left, int left_key, const RowSet& right,
                         int right_key, size_t right_arity) {
  std::unordered_map<std::string, std::vector<const Row*>> build;
  for (const Row& row : right) {
    const Value& key = row[static_cast<size_t>(right_key)];
    if (key.is_null()) continue;
    build[HashKeyOf(key)].push_back(&row);
  }
  RowSet out;
  for (const Row& row : left) {
    const Value& key = row[static_cast<size_t>(left_key)];
    auto it = key.is_null() ? build.end() : build.find(HashKeyOf(key));
    if (it == build.end()) {
      Row joined = row;
      joined.resize(joined.size() + right_arity, Value::Null());
      out.push_back(std::move(joined));
    } else {
      for (const Row* match : it->second) {
        Row joined = row;
        joined.insert(joined.end(), match->begin(), match->end());
        out.push_back(std::move(joined));
      }
    }
  }
  return out;
}

RowSet GroupCount(const RowSet& rows, int key_column) {
  std::map<Value, int64_t> groups;
  for (const Row& row : rows) {
    ++groups[row[static_cast<size_t>(key_column)]];
  }
  RowSet out;
  for (const auto& [key, count] : groups) {
    out.push_back({key, Value::Int(count)});
  }
  return out;
}

RowSet Project(const RowSet& rows, const std::vector<int>& columns) {
  RowSet out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    Row projected;
    projected.reserve(columns.size());
    for (int c : columns) projected.push_back(row[static_cast<size_t>(c)]);
    out.push_back(std::move(projected));
  }
  return out;
}

RowSet Distinct(const RowSet& rows) {
  std::set<std::string> seen;
  RowSet out;
  for (const Row& row : rows) {
    if (seen.insert(EncodeRow(row)).second) out.push_back(row);
  }
  return out;
}

}  // namespace xbench::relational
