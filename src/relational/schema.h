#ifndef XBENCH_RELATIONAL_SCHEMA_H_
#define XBENCH_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace xbench::relational {

/// A row is a vector of values positionally matching a Schema.
using Row = std::vector<Value>;

struct Column {
  std::string name;
  ValueType type = ValueType::kString;
};

/// Ordered column list of a table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }

  /// Index of `name`, or -1 when absent.
  int IndexOf(std::string_view name) const;

  /// Validates arity and type compatibility (NULL matches any type;
  /// kInt values are accepted in kDouble columns).
  Status Validate(const Row& row) const;

 private:
  std::vector<Column> columns_;
};

/// Encodes a row to the heap-file payload format and back. Layout:
/// [u16 column-count] then per column [u8 type][payload], where ints are
/// little-endian u64, doubles 8 raw bytes, strings [u32 len][bytes].
std::string EncodeRow(const Row& row);
Result<Row> DecodeRow(std::string_view payload);

}  // namespace xbench::relational

#endif  // XBENCH_RELATIONAL_SCHEMA_H_
