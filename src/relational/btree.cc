#include "relational/btree.h"

#include <algorithm>

namespace xbench::relational {

std::strong_ordering CompareKeys(const Key& a, const Key& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    auto cmp = a[i].Compare(b[i]);
    if (cmp != std::strong_ordering::equal) return cmp;
  }
  if (a.size() < b.size()) return std::strong_ordering::less;
  if (a.size() > b.size()) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

namespace {
bool KeyLess(const Key& a, const Key& b) {
  return CompareKeys(a, b) == std::strong_ordering::less;
}
}  // namespace

void BTreeIndex::SplitChild(Node& parent, size_t i) {
  Node& child = *parent.children[i];
  auto right = std::make_unique<Node>(child.is_leaf);
  const size_t mid = child.keys.size() / 2;

  if (child.is_leaf) {
    right->keys.assign(child.keys.begin() + mid, child.keys.end());
    right->rids.assign(child.rids.begin() + mid, child.rids.end());
    child.keys.resize(mid);
    child.rids.resize(mid);
    right->next_leaf = child.next_leaf;
    child.next_leaf = right.get();
    // Separator = first key of the right leaf (copied, B+-tree style).
    parent.keys.insert(parent.keys.begin() + i, right->keys.front());
  } else {
    // Move the middle key up; split children around it.
    Key separator = child.keys[mid];
    right->keys.assign(child.keys.begin() + mid + 1, child.keys.end());
    for (size_t c = mid + 1; c < child.children.size(); ++c) {
      right->children.push_back(std::move(child.children[c]));
    }
    child.keys.resize(mid);
    child.children.resize(mid + 1);
    parent.keys.insert(parent.keys.begin() + i, std::move(separator));
  }
  parent.children.insert(parent.children.begin() + i + 1, std::move(right));
}

void BTreeIndex::InsertNonFull(Node& node, Key key, storage::RecordId rid) {
  // Each node touched on the insert path models one page access, so index
  // maintenance during bulk load costs log-height I/O per row, as it would
  // on disk.
  Charge();
  if (node.is_leaf) {
    auto it = std::upper_bound(node.keys.begin(), node.keys.end(), key, KeyLess);
    const size_t pos = static_cast<size_t>(it - node.keys.begin());
    node.keys.insert(it, std::move(key));
    node.rids.insert(node.rids.begin() + pos, rid);
    return;
  }
  auto it = std::upper_bound(node.keys.begin(), node.keys.end(), key, KeyLess);
  size_t i = static_cast<size_t>(it - node.keys.begin());
  if (node.children[i]->keys.size() >= kFanout) {
    SplitChild(node, i);
    if (KeyLess(node.keys[i], key) ||
        CompareKeys(node.keys[i], key) == std::strong_ordering::equal) {
      // Equal keys go right so that leaf order preserves insertion order
      // for duplicates (upper_bound semantics).
      ++i;
    }
  }
  InsertNonFull(*node.children[i], std::move(key), rid);
}

void BTreeIndex::Insert(Key key, storage::RecordId rid) {
  if (root_->keys.size() >= kFanout) {
    auto new_root = std::make_unique<Node>(/*leaf=*/false);
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(*root_, 0);
  }
  InsertNonFull(*root_, std::move(key), rid);
  ++entry_count_;
}

bool BTreeIndex::Erase(const Key& key, storage::RecordId rid) {
  Node* leaf = FindLeaf(key);
  size_t pos = static_cast<size_t>(
      std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key, KeyLess) -
      leaf->keys.begin());
  while (leaf != nullptr) {
    for (; pos < leaf->keys.size(); ++pos) {
      const auto cmp = CompareKeys(leaf->keys[pos], key);
      if (cmp == std::strong_ordering::greater) return false;
      if (cmp == std::strong_ordering::equal && leaf->rids[pos] == rid) {
        leaf->keys.erase(leaf->keys.begin() + static_cast<ptrdiff_t>(pos));
        leaf->rids.erase(leaf->rids.begin() + static_cast<ptrdiff_t>(pos));
        --entry_count_;
        return true;
      }
    }
    leaf = leaf->next_leaf;
    if (leaf != nullptr) Charge();
    pos = 0;
  }
  return false;
}

const BTreeIndex::Node* BTreeIndex::FindLeaf(const Key& key) const {
  const Node* node = root_.get();
  Charge();
  while (!node->is_leaf) {
    auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key,
                               KeyLess);
    // For equal keys descend left so the scan starts at the first duplicate.
    size_t i = static_cast<size_t>(it - node->keys.begin());
    while (i > 0 && CompareKeys(node->keys[i - 1], key) ==
                        std::strong_ordering::equal) {
      --i;
    }
    node = node->children[i].get();
    Charge();
  }
  return node;
}

std::vector<storage::RecordId> BTreeIndex::Lookup(const Key& key) const {
  std::vector<storage::RecordId> out;
  Range(&key, &key, [&out](const Key&, storage::RecordId rid) {
    out.push_back(rid);
    return true;
  });
  return out;
}

void BTreeIndex::Range(
    const Key* lo, const Key* hi,
    const std::function<bool(const Key&, storage::RecordId)>& visit) const {
  const Node* leaf = nullptr;
  size_t pos = 0;
  if (lo != nullptr) {
    leaf = FindLeaf(*lo);
    pos = static_cast<size_t>(
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), *lo, KeyLess) -
        leaf->keys.begin());
  } else {
    const Node* node = root_.get();
    Charge();
    while (!node->is_leaf) {
      node = node->children.front().get();
      Charge();
    }
    leaf = node;
  }
  while (leaf != nullptr) {
    for (; pos < leaf->keys.size(); ++pos) {
      if (hi != nullptr &&
          CompareKeys(leaf->keys[pos], *hi) == std::strong_ordering::greater) {
        return;
      }
      if (!visit(leaf->keys[pos], leaf->rids[pos])) return;
    }
    leaf = leaf->next_leaf;
    if (leaf != nullptr) Charge();
    pos = 0;
  }
}

int BTreeIndex::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

}  // namespace xbench::relational
