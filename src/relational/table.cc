#include "relational/table.h"

namespace xbench::relational {

Result<storage::RecordId> Table::Insert(const Row& row) {
  XBENCH_RETURN_IF_ERROR(schema_.Validate(row));
  const storage::RecordId rid = file_.Append(EncodeRow(row));
  for (auto& [name, info] : indexes_) {
    info.tree->Insert(ExtractKey(info, row), rid);
  }
  return rid;
}

Status Table::Delete(storage::RecordId rid) {
  if (deleted_.count(rid) != 0) {
    return Status::NotFound("row already deleted");
  }
  XBENCH_ASSIGN_OR_RETURN(Row row, Fetch(rid));
  for (auto& [name, info] : indexes_) {
    info.tree->Erase(ExtractKey(info, row), rid);
  }
  deleted_.insert(rid);
  return Status::Ok();
}

Result<Row> Table::Fetch(storage::RecordId rid) {
  if (deleted_.count(rid) != 0) {
    return Status::NotFound("row deleted");
  }
  return DecodeRow(file_.Read(rid));
}

void Table::Scan(
    const std::function<bool(storage::RecordId, const Row&)>& visit) {
  file_.Scan([&](storage::RecordId rid, std::string_view payload) {
    if (deleted_.count(rid) != 0) return true;
    auto row = DecodeRow(payload);
    if (!row.ok()) return false;  // corruption terminates the scan
    return visit(rid, *row);
  });
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::vector<std::string>& column_names) {
  if (indexes_.count(index_name) != 0) {
    return Status::AlreadyExists("index '" + index_name + "'");
  }
  IndexInfo info;
  for (const std::string& column : column_names) {
    const int idx = schema_.IndexOf(column);
    if (idx < 0) {
      return Status::NotFound("column '" + column + "' in table '" + name_ +
                              "'");
    }
    info.column_indexes.push_back(idx);
  }
  info.tree = std::make_unique<BTreeIndex>(disk_->clock());
  IndexInfo& stored = indexes_[index_name] = std::move(info);
  Scan([&](storage::RecordId rid, const Row& row) {
    stored.tree->Insert(ExtractKey(stored, row), rid);
    return true;
  });
  return Status::Ok();
}

const BTreeIndex* Table::FindIndex(const std::string& index_name) const {
  auto it = indexes_.find(index_name);
  return it == indexes_.end() ? nullptr : it->second.tree.get();
}

Key Table::MakeKey(const std::string& index_name, const Row& row) const {
  auto it = indexes_.find(index_name);
  if (it == indexes_.end()) return {};
  return ExtractKey(it->second, row);
}

Key Table::ExtractKey(const IndexInfo& info, const Row& row) const {
  Key key;
  key.reserve(info.column_indexes.size());
  for (int idx : info.column_indexes) {
    key.push_back(row[static_cast<size_t>(idx)]);
  }
  return key;
}

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  auto table = std::make_unique<Table>(name, std::move(schema), *disk_, *pool_);
  Table* raw = table.get();
  tables_[name] = std::move(table);
  return raw;
}

Table* Database::FindTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

}  // namespace xbench::relational
