#ifndef XBENCH_RELATIONAL_VALUE_H_
#define XBENCH_RELATIONAL_VALUE_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace xbench::relational {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
};

const char* ValueTypeName(ValueType type);

/// A SQL-style value: NULL, 64-bit integer, double, or string. NULLs order
/// before every non-null value (the convention our sort/index code uses),
/// and compare unequal to everything including other NULLs under
/// SQL semantics — use SqlEquals for predicate evaluation and operator==
/// for structural/key equality.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }
  // Alternatives are constructed in place rather than moved in through a
  // Data temporary: GCC 12 flags the variant move as maybe-uninitialized
  // under sanitizer inlining.
  static Value Int(int64_t v) { return Value(std::in_place_type<int64_t>, v); }
  static Value Double(double v) { return Value(std::in_place_type<double>, v); }
  static Value String(std::string v) {
    return Value(std::in_place_type<std::string>, std::move(v));
  }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const;
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Renders the value as a string ("" for NULL), the way a relational
  /// column is emitted back into XML text.
  std::string ToText() const;

  /// Structural comparison used for keys and sorting: NULL < int/double
  /// (numeric, compared across the two numeric types) < string.
  std::strong_ordering Compare(const Value& other) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == std::strong_ordering::equal;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) == std::strong_ordering::less;
  }

  /// SQL equality: NULL = anything is false.
  static bool SqlEquals(const Value& a, const Value& b) {
    if (a.is_null() || b.is_null()) return false;
    return a == b;
  }

 private:
  using Data = std::variant<std::monostate, int64_t, double, std::string>;
  template <typename T, typename... Args>
  explicit Value(std::in_place_type_t<T> tag, Args&&... args)
      : data_(tag, std::forward<Args>(args)...) {}

  Data data_;
};

}  // namespace xbench::relational

#endif  // XBENCH_RELATIONAL_VALUE_H_
