#ifndef XBENCH_RELATIONAL_BTREE_H_
#define XBENCH_RELATIONAL_BTREE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/stopwatch.h"
#include "relational/value.h"
#include "storage/heap_file.h"

namespace xbench::relational {

/// Composite index key.
using Key = std::vector<Value>;

std::strong_ordering CompareKeys(const Key& a, const Key& b);

/// A B+-tree secondary index mapping composite keys to heap-file record
/// ids. Nodes model disk pages: every node visited during a lookup or a
/// leaf-chain scan charges one page read against the owning disk's clock,
/// so index access cost scales with tree height and range width exactly as
/// it would on disk, while the node payloads stay as in-memory vectors.
class BTreeIndex {
 public:
  static constexpr size_t kFanout = 128;

  /// `clock` is charged `page_read_micros` per node visit (pass the
  /// engine's SimulatedDisk clock).
  BTreeIndex(VirtualClock& clock, uint64_t page_read_micros = 40)
      : clock_(&clock), page_read_micros_(page_read_micros) {
    root_ = std::make_unique<Node>(/*leaf=*/true);
  }

  void Insert(Key key, storage::RecordId rid);

  /// Removes one (key, rid) entry. Returns false when absent. Leaves may
  /// become under-full; the index never rebalances on delete (the
  /// benchmark workload is insert-heavy, matching the paper's planned
  /// update extension).
  bool Erase(const Key& key, storage::RecordId rid);

  /// All record ids whose key equals `key`, in insertion order.
  std::vector<storage::RecordId> Lookup(const Key& key) const;

  /// Visits entries with lo <= key <= hi in key order. Null bounds are
  /// unbounded. Returning false stops the scan.
  void Range(const Key* lo, const Key* hi,
             const std::function<bool(const Key&, storage::RecordId)>& visit)
      const;

  size_t entry_count() const { return entry_count_; }
  int height() const;

 private:
  struct Node {
    explicit Node(bool leaf) : is_leaf(leaf) {}
    bool is_leaf;
    std::vector<Key> keys;
    // Leaf: rids parallel to keys. Internal: children has keys.size()+1.
    std::vector<storage::RecordId> rids;
    std::vector<std::unique_ptr<Node>> children;
    Node* next_leaf = nullptr;
  };

  void Charge() const { clock_->AdvanceMicros(page_read_micros_); }

  /// Splits `child` (the i-th child of `parent`) which must be full.
  void SplitChild(Node& parent, size_t i);
  void InsertNonFull(Node& node, Key key, storage::RecordId rid);

  /// Descends to the leaf that would contain `key`, charging per level.
  const Node* FindLeaf(const Key& key) const;
  Node* FindLeaf(const Key& key) {
    return const_cast<Node*>(
        static_cast<const BTreeIndex*>(this)->FindLeaf(key));
  }

  std::unique_ptr<Node> root_;
  VirtualClock* clock_;
  uint64_t page_read_micros_;
  size_t entry_count_ = 0;
};

}  // namespace xbench::relational

#endif  // XBENCH_RELATIONAL_BTREE_H_
