#include "tpcw/mapping.h"

#include <cstdio>
#include <map>

#include "common/strings.h"

namespace xbench::tpcw {
namespace {

std::string MoneyText(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

void AddAddress(xml::Node& parent, const char* element_name,
                const Address& addr, const TpcwData& data) {
  xml::Node* node = parent.AddElement(element_name);
  node->AddSimple("street", addr.addr_street1);
  if (!addr.addr_street2.empty()) {
    node->AddSimple("street2", addr.addr_street2);
  }
  node->AddSimple("city", addr.addr_city);
  if (!addr.addr_state.empty()) node->AddSimple("state", addr.addr_state);
  node->AddSimple("zip", addr.addr_zip);
  node->AddSimple(
      "country",
      data.countries[static_cast<size_t>(addr.addr_co_id - 1)].co_name);
}

}  // namespace

xml::Document BuildCatalog(const TpcwData& data) {
  // Pre-index the joins.
  std::map<int64_t, std::vector<int64_t>> item_to_authors;
  for (const ItemAuthor& ia : data.item_authors) {
    item_to_authors[ia.ia_i_id].push_back(ia.ia_a_id);
  }

  auto root = xml::Node::Element("catalog");
  for (const Item& item : data.items) {
    xml::Node* item_node = root->AddElement("item");
    item_node->SetAttribute("id", ItemIdString(item.i_id));
    item_node->AddSimple("title", item.i_title);

    xml::Node* authors_node = item_node->AddElement("authors");
    for (int64_t a_id : item_to_authors[item.i_id]) {
      const Author& author = data.authors[static_cast<size_t>(a_id - 1)];
      const Author2& author2 = data.authors2[static_cast<size_t>(a_id - 1)];
      xml::Node* author_node = authors_node->AddElement("author");
      author_node->SetAttribute("id", AuthorIdString(a_id));
      xml::Node* name = author_node->AddElement("name");
      name->AddSimple("first_name", author.a_fname);
      name->AddSimple("last_name", author.a_lname);
      author_node->AddSimple("date_of_birth", author.a_dob);
      author_node->AddSimple("biography", author.a_bio);
      AddAddress(*author_node, "mail_address",
                 data.addresses[static_cast<size_t>(author2.a2_addr_id - 1)],
                 data);
      author_node->AddSimple("phone", author2.a2_phone);
      author_node->AddSimple("email", author2.a2_email);
    }

    const Publisher& pub =
        data.publishers[static_cast<size_t>(item.i_pub_id - 1)];
    xml::Node* pub_node = item_node->AddElement("publisher");
    pub_node->AddSimple("name", pub.pub_name);
    if (!pub.pub_fax.empty()) pub_node->AddSimple("fax_number", pub.pub_fax);
    pub_node->AddSimple("phone", pub.pub_phone);
    pub_node->AddSimple("email", pub.pub_email);

    item_node->AddSimple("date_of_release", item.i_date_of_release);
    item_node->AddSimple("subject", item.i_subject);
    item_node->AddSimple("description", item.i_desc);
    item_node->AddSimple("size", std::to_string(item.i_size));
    item_node->AddSimple("pages", std::to_string(item.i_page));
    item_node->AddSimple("srp", MoneyText(item.i_srp));
    item_node->AddSimple("cost", MoneyText(item.i_cost));
    item_node->AddSimple("stock", std::to_string(item.i_stock));
    item_node->AddSimple("isbn", item.i_isbn);
    item_node->AddSimple("backing", item.i_backing);
  }
  return xml::Document("catalog.xml", std::move(root));
}

std::vector<xml::Document> BuildOrderDocuments(const TpcwData& data) {
  std::map<int64_t, std::vector<const OrderLine*>> lines_by_order;
  for (const OrderLine& ol : data.order_lines) {
    lines_by_order[ol.ol_o_id].push_back(&ol);
  }
  std::map<int64_t, const CcXact*> xact_by_order;
  for (const CcXact& cx : data.cc_xacts) {
    xact_by_order[cx.cx_o_id] = &cx;
  }

  std::vector<xml::Document> docs;
  docs.reserve(data.orders.size());
  for (const Order& order : data.orders) {
    auto root = xml::Node::Element("order");
    root->SetAttribute("id", OrderIdString(order.o_id));
    root->AddSimple("customer_id", CustomerIdString(order.o_c_id));
    root->AddSimple("order_date", order.o_date);
    root->AddSimple("sub_total", MoneyText(order.o_sub_total));
    root->AddSimple("tax", MoneyText(order.o_tax));
    root->AddSimple("total", MoneyText(order.o_total));
    xml::Node* shipping = root->AddElement("shipping");
    shipping->AddSimple("ship_type", order.o_ship_type);
    shipping->AddSimple("ship_date", order.o_ship_date);
    AddAddress(*shipping, "ship_address",
               data.addresses[static_cast<size_t>(order.o_ship_addr_id - 1)],
               data);
    root->AddSimple("status", order.o_status);

    if (auto it = xact_by_order.find(order.o_id); it != xact_by_order.end()) {
      const CcXact& cx = *it->second;
      xml::Node* cc = root->AddElement("cc_xact");
      cc->AddSimple("cc_type", cx.cx_type);
      cc->AddSimple("cc_number", cx.cx_num);
      cc->AddSimple("cc_name", cx.cx_name);
      cc->AddSimple("cc_expire", cx.cx_expire);
      cc->AddSimple("auth_id", cx.cx_auth_id);
      cc->AddSimple("amount", MoneyText(cx.cx_xact_amt));
      cc->AddSimple("xact_date", cx.cx_xact_date);
      cc->AddSimple(
          "country",
          data.countries[static_cast<size_t>(cx.cx_co_id - 1)].co_name);
    }

    xml::Node* order_lines = root->AddElement("order_lines");
    for (const OrderLine* ol : lines_by_order[order.o_id]) {
      xml::Node* line = order_lines->AddElement("order_line");
      line->SetAttribute("no", std::to_string(ol->ol_id));
      line->AddSimple("item_id", ItemIdString(ol->ol_i_id));
      line->AddSimple("quantity", std::to_string(ol->ol_qty));
      line->AddSimple("discount", MoneyText(ol->ol_discount));
      if (!ol->ol_comments.empty()) {
        line->AddSimple("comments", ol->ol_comments);
      }
    }

    docs.emplace_back("order" + PadNumber(order.o_id, 6) + ".xml",
                      std::move(root));
  }
  return docs;
}

namespace {

/// Rows per flat-translation document. Flat tables are chunked into
/// multiple documents so the DC/MD class stays "many small files" at every
/// scale (and fits per-document limits such as DB2's decomposition cap and
/// the CLOB bound, as the paper's methodology requires).
constexpr size_t kFlatChunkRows = 400;

}  // namespace

std::vector<xml::Document> BuildFlatDocuments(const TpcwData& data) {
  std::vector<xml::Document> docs;

  // Emits one table as a sequence of chunked flat documents.
  auto chunked = [&docs](const char* root_name, const char* base_name,
                         size_t row_count, auto&& emit_row) {
    size_t emitted = 0;
    int chunk = 0;
    do {
      auto root = xml::Node::Element(root_name);
      const size_t end = std::min(row_count, emitted + kFlatChunkRows);
      for (; emitted < end; ++emitted) {
        emit_row(*root, emitted);
      }
      ++chunk;
      std::string name = base_name;
      if (row_count > kFlatChunkRows) {
        name += "_" + PadNumber(chunk, 3);
      }
      docs.emplace_back(name + ".xml", std::move(root));
    } while (emitted < row_count);
  };

  chunked("customers", "Customer", data.customers.size(),
          [&data](xml::Node& root, size_t i) {
            const Customer& c = data.customers[i];
            xml::Node* row = root.AddElement("customer");
            row->SetAttribute("id", CustomerIdString(c.c_id));
            row->AddSimple("uname", c.c_uname);
            row->AddSimple("first_name", c.c_fname);
            row->AddSimple("last_name", c.c_lname);
            row->AddSimple("address_id", std::to_string(c.c_addr_id));
            row->AddSimple("phone", c.c_phone);
            row->AddSimple("email", c.c_email);
            row->AddSimple("since", c.c_since);
            row->AddSimple("discount", MoneyText(c.c_discount));
          });

  chunked("items", "Item", data.items.size(),
          [&data](xml::Node& root, size_t i) {
            const Item& it = data.items[i];
            xml::Node* row = root.AddElement("item");
            row->SetAttribute("id", ItemIdString(it.i_id));
            row->AddSimple("title", it.i_title);
            row->AddSimple("publisher_id", std::to_string(it.i_pub_id));
            row->AddSimple("date_of_release", it.i_date_of_release);
            row->AddSimple("subject", it.i_subject);
            row->AddSimple("srp", MoneyText(it.i_srp));
            row->AddSimple("stock", std::to_string(it.i_stock));
            row->AddSimple("isbn", it.i_isbn);
          });

  chunked("authors", "Author", data.authors.size(),
          [&data](xml::Node& root, size_t i) {
            const Author& a = data.authors[i];
            xml::Node* row = root.AddElement("author");
            row->SetAttribute("id", AuthorIdString(a.a_id));
            row->AddSimple("first_name", a.a_fname);
            row->AddSimple("last_name", a.a_lname);
            row->AddSimple("date_of_birth", a.a_dob);
          });

  chunked("addresses", "Address", data.addresses.size(),
          [&data](xml::Node& root, size_t i) {
            const Address& a = data.addresses[i];
            xml::Node* row = root.AddElement("address");
            row->SetAttribute("id", std::to_string(a.addr_id));
            row->AddSimple("street1", a.addr_street1);
            if (!a.addr_street2.empty()) {
              row->AddSimple("street2", a.addr_street2);
            }
            row->AddSimple("city", a.addr_city);
            if (!a.addr_state.empty()) row->AddSimple("state", a.addr_state);
            row->AddSimple("zip", a.addr_zip);
            row->AddSimple("country_id", std::to_string(a.addr_co_id));
          });

  chunked("countries", "Country", data.countries.size(),
          [&data](xml::Node& root, size_t i) {
            const Country& c = data.countries[i];
            xml::Node* row = root.AddElement("country");
            row->SetAttribute("id", std::to_string(c.co_id));
            row->AddSimple("name", c.co_name);
            row->AddSimple("currency", c.co_currency);
          });

  return docs;
}

}  // namespace xbench::tpcw
