#ifndef XBENCH_TPCW_ROWS_H_
#define XBENCH_TPCW_ROWS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xbench::tpcw {

/// Plain row structs mirroring the TPC-W tables the paper maps to XML
/// (§2.1.2), plus the two tables XBench adds (AUTHOR_2, PUBLISHER).

struct Country {
  int64_t co_id = 0;
  std::string co_name;
  std::string co_currency;
};

struct Address {
  int64_t addr_id = 0;
  std::string addr_street1;
  std::string addr_street2;  // empty = NULL
  std::string addr_city;
  std::string addr_state;
  std::string addr_zip;
  int64_t addr_co_id = 0;
};

struct Author {
  int64_t a_id = 0;
  std::string a_fname;
  std::string a_lname;
  std::string a_dob;
  std::string a_bio;
};

/// XBench extension: additional author contact information.
struct Author2 {
  int64_t a2_a_id = 0;
  int64_t a2_addr_id = 0;
  std::string a2_phone;
  std::string a2_email;
};

/// XBench extension: publisher of an item. pub_fax may be empty (missing
/// fax — Q14's irregularity target).
struct Publisher {
  int64_t pub_id = 0;
  std::string pub_name;
  std::string pub_fax;  // empty = missing
  std::string pub_phone;
  std::string pub_email;
};

struct Item {
  int64_t i_id = 0;
  std::string i_title;
  int64_t i_pub_id = 0;
  std::string i_date_of_release;  // Table 3 index target
  std::string i_subject;
  std::string i_desc;
  double i_srp = 0;
  double i_cost = 0;
  int64_t i_stock = 0;
  std::string i_isbn;
  int64_t i_page = 0;
  int64_t i_size = 0;  // Q20's castable numeric "size"
  std::string i_backing;
};

/// Items can have several authors in the catalog (Q7 quantifies over all
/// of an item's authors), modelled as a join table.
struct ItemAuthor {
  int64_t ia_i_id = 0;
  int64_t ia_a_id = 0;
};

struct Customer {
  int64_t c_id = 0;
  std::string c_uname;
  std::string c_fname;
  std::string c_lname;
  int64_t c_addr_id = 0;
  std::string c_phone;
  std::string c_email;
  std::string c_since;
  double c_discount = 0;
};

struct Order {
  int64_t o_id = 0;
  int64_t o_c_id = 0;
  std::string o_date;
  double o_sub_total = 0;
  double o_tax = 0;
  double o_total = 0;
  std::string o_ship_type;
  std::string o_ship_date;
  int64_t o_bill_addr_id = 0;
  int64_t o_ship_addr_id = 0;
  std::string o_status;
};

struct OrderLine {
  int64_t ol_id = 0;  // position within the order (1-based)
  int64_t ol_o_id = 0;
  int64_t ol_i_id = 0;
  int64_t ol_qty = 0;
  double ol_discount = 0;
  std::string ol_comments;  // empty = NULL
};

struct CcXact {
  int64_t cx_o_id = 0;
  std::string cx_type;
  std::string cx_num;
  std::string cx_name;
  std::string cx_expire;
  std::string cx_auth_id;
  double cx_xact_amt = 0;
  std::string cx_xact_date;
  int64_t cx_co_id = 0;
};

/// A populated TPC-W-like database.
struct TpcwData {
  std::vector<Country> countries;
  std::vector<Address> addresses;
  std::vector<Author> authors;
  std::vector<Author2> authors2;
  std::vector<Publisher> publishers;
  std::vector<Item> items;
  std::vector<ItemAuthor> item_authors;
  std::vector<Customer> customers;
  std::vector<Order> orders;
  std::vector<OrderLine> order_lines;
  std::vector<CcXact> cc_xacts;
};

/// Stable identifier renderings used in the XML mappings and by workload
/// parameter selection.
std::string ItemIdString(int64_t i_id);
std::string OrderIdString(int64_t o_id);
std::string AuthorIdString(int64_t a_id);
std::string CustomerIdString(int64_t c_id);

/// The ship types orders cycle through (Q10 sorts on these).
const std::vector<std::string>& ShipTypes();
/// The order status domain (Q9/Q19).
const std::vector<std::string>& OrderStatuses();

}  // namespace xbench::tpcw

#endif  // XBENCH_TPCW_ROWS_H_
