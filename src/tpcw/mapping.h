#ifndef XBENCH_TPCW_MAPPING_H_
#define XBENCH_TPCW_MAPPING_H_

#include <vector>

#include "tpcw/rows.h"
#include "xml/node.h"

namespace xbench::tpcw {

/// DC/SD: join-based nesting mapping (paper §2.1.2, Figure 3). ITEM is the
/// base table; AUTHOR(+AUTHOR_2+ADDRESS+COUNTRY) and PUBLISHER tuples are
/// nested under their items via foreign keys, producing one deep
/// catalog.xml.
xml::Document BuildCatalog(const TpcwData& data);

/// DC/MD: ORDERS ⋈ ORDER_LINE ⋈ CC_XACTS mapped to one orderXXX.xml per
/// order (Figure 4).
std::vector<xml::Document> BuildOrderDocuments(const TpcwData& data);

/// DC/MD: flat translation (FT) of CUSTOMER, ITEM, AUTHOR, ADDRESS and
/// COUNTRY into one flat document each (tuple -> element, column -> leaf).
std::vector<xml::Document> BuildFlatDocuments(const TpcwData& data);

}  // namespace xbench::tpcw

#endif  // XBENCH_TPCW_MAPPING_H_
