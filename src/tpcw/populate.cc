#include "tpcw/populate.h"

#include <algorithm>

#include "common/strings.h"

namespace xbench::tpcw {
namespace {

std::string Isbn(Rng& rng) {
  std::string out = "978-";
  for (int i = 0; i < 9; ++i) {
    out.push_back(static_cast<char>('0' + rng.NextBounded(10)));
  }
  return out;
}

std::string Phone(Rng& rng) {
  return "+1-" + PadNumber(rng.NextInt(200, 999), 3) + "-" +
         PadNumber(rng.NextInt(0, 9999999), 7);
}

double Money(Rng& rng, double lo, double hi) {
  const double cents = rng.NextDouble() * (hi - lo) + lo;
  return static_cast<double>(static_cast<int64_t>(cents * 100)) / 100.0;
}

}  // namespace

TpcwData Populate(const PopulateScale& scale, uint64_t seed,
                  const datagen::WordPool& words) {
  Rng rng(seed ^ 0x79C3ull);
  TpcwData data;

  // COUNTRY
  for (int64_t i = 1; i <= scale.countries; ++i) {
    Country c;
    c.co_id = i;
    c.co_name = "Country" + PadNumber(i, 2);
    c.co_currency = i % 3 == 0 ? "USD" : (i % 3 == 1 ? "EUR" : "CAD");
    data.countries.push_back(std::move(c));
  }

  // ADDRESS: one per customer + one per author + spares for orders.
  const int64_t n_addresses = scale.customers + scale.authors + 10;
  for (int64_t i = 1; i <= n_addresses; ++i) {
    Address a;
    a.addr_id = i;
    a.addr_street1 = std::to_string(rng.NextInt(1, 9999)) + " " +
                     words.RandomWord(rng) + " St";
    if (rng.NextBool(0.3)) a.addr_street2 = "Suite " + std::to_string(rng.NextInt(1, 400));
    a.addr_city = words.PersonName(rng) + "ville";
    a.addr_state = rng.NextBool(0.8) ? words.PersonName(rng).substr(0, 2) : "";
    a.addr_zip = PadNumber(rng.NextInt(10000, 99999), 5);
    a.addr_co_id = rng.NextInt(1, scale.countries);
    data.addresses.push_back(std::move(a));
  }

  // AUTHOR + AUTHOR_2
  for (int64_t i = 1; i <= scale.authors; ++i) {
    Author a;
    a.a_id = i;
    a.a_fname = words.PersonName(rng);
    a.a_lname = words.PersonName(rng);
    a.a_dob = datagen::WordPool::RandomDate(rng, 1920, 1985);
    a.a_bio = words.Sentence(rng, 10, 30);
    data.authors.push_back(std::move(a));

    Author2 a2;
    a2.a2_a_id = i;
    a2.a2_addr_id = scale.customers + i;  // authors' address block
    a2.a2_phone = Phone(rng);
    a2.a2_email = ToLower(data.authors.back().a_fname) + "." +
                  ToLower(data.authors.back().a_lname) + "@press.example";
    data.authors2.push_back(std::move(a2));
  }

  // PUBLISHER (fax missing for ~30%: Q14's target).
  for (int64_t i = 1; i <= scale.publishers; ++i) {
    Publisher p;
    p.pub_id = i;
    p.pub_name = words.PersonName(rng) + " Press " + PadNumber(i, 2);
    if (rng.NextBool(0.7)) p.pub_fax = Phone(rng);
    p.pub_phone = Phone(rng);
    p.pub_email = "contact@pub" + PadNumber(i, 2) + ".example";
    data.publishers.push_back(std::move(p));
  }

  // ITEM + ITEM_AUTHOR
  static const char* kSubjects[] = {"ARTS", "BIOGRAPHIES", "BUSINESS",
                                    "COMPUTERS", "COOKING", "HISTORY",
                                    "LITERATURE", "SCIENCE", "TRAVEL"};
  static const char* kBackings[] = {"HARDBACK", "PAPERBACK", "AUDIO",
                                    "LIMITED"};
  for (int64_t i = 1; i <= scale.items; ++i) {
    Item item;
    item.i_id = i;
    std::string title = words.Sentence(rng, 2, 7);
    title.pop_back();
    item.i_title = title;
    item.i_pub_id = rng.NextInt(1, scale.publishers);
    item.i_date_of_release = datagen::WordPool::RandomDate(rng, 1990, 2002);
    item.i_subject = kSubjects[rng.NextBounded(std::size(kSubjects))];
    item.i_desc = words.Sentence(rng, 8, 25);
    item.i_srp = Money(rng, 5, 120);
    item.i_cost = item.i_srp * 0.8;
    item.i_stock = rng.NextInt(0, 500);
    item.i_isbn = Isbn(rng);
    item.i_page = rng.NextInt(40, 1200);
    item.i_size = rng.NextInt(100, 5000);
    item.i_backing = kBackings[rng.NextBounded(std::size(kBackings))];
    data.items.push_back(std::move(item));

    const int64_t n_authors = rng.NextInt(1, 3);
    std::vector<int64_t> chosen;
    for (int64_t k = 0; k < n_authors; ++k) {
      int64_t a_id = rng.NextInt(1, scale.authors);
      if (std::find(chosen.begin(), chosen.end(), a_id) != chosen.end()) {
        continue;
      }
      chosen.push_back(a_id);
      data.item_authors.push_back({i, a_id});
    }
  }

  // CUSTOMER
  for (int64_t i = 1; i <= scale.customers; ++i) {
    Customer c;
    c.c_id = i;
    c.c_fname = words.PersonName(rng);
    c.c_lname = words.PersonName(rng);
    c.c_uname = ToLower(c.c_fname) + PadNumber(i, 4);
    c.c_addr_id = i;
    c.c_phone = Phone(rng);
    c.c_email = c.c_uname + "@shop.example";
    c.c_since = datagen::WordPool::RandomDate(rng, 1998, 2002);
    c.c_discount = static_cast<double>(rng.NextInt(0, 50)) / 100.0;
    data.customers.push_back(std::move(c));
  }

  // ORDERS + ORDER_LINE + CC_XACTS
  static const char* kCcTypes[] = {"VISA", "MASTERCARD", "AMEX", "DISCOVER"};
  for (int64_t i = 1; i <= scale.orders; ++i) {
    Order o;
    o.o_id = i;
    o.o_c_id = rng.NextInt(1, std::max<int64_t>(1, scale.customers));
    o.o_date = datagen::WordPool::RandomDate(rng, 2000, 2002);
    o.o_ship_type = ShipTypes()[rng.NextBounded(ShipTypes().size())];
    o.o_ship_date = o.o_date;  // simplification: same-period shipping
    o.o_bill_addr_id = o.o_c_id;
    o.o_ship_addr_id = rng.NextBool(0.8)
                           ? o.o_c_id
                           : rng.NextInt(1, n_addresses);
    o.o_status = OrderStatuses()[rng.NextBounded(OrderStatuses().size())];

    const int64_t n_lines = rng.NextInt(1, 8);
    double sub_total = 0;
    for (int64_t line = 1; line <= n_lines; ++line) {
      OrderLine ol;
      ol.ol_id = line;
      ol.ol_o_id = i;
      ol.ol_i_id = rng.NextInt(1, std::max<int64_t>(1, scale.items));
      ol.ol_qty = rng.NextInt(1, 5);
      ol.ol_discount = static_cast<double>(rng.NextInt(0, 30)) / 100.0;
      if (rng.NextBool(0.4)) ol.ol_comments = words.Sentence(rng, 3, 10);
      sub_total +=
          data.items[static_cast<size_t>(ol.ol_i_id - 1)].i_srp *
          static_cast<double>(ol.ol_qty) * (1.0 - ol.ol_discount);
      data.order_lines.push_back(std::move(ol));
    }
    o.o_sub_total = static_cast<double>(static_cast<int64_t>(sub_total * 100)) / 100.0;
    o.o_tax = static_cast<double>(static_cast<int64_t>(o.o_sub_total * 8)) / 100.0;
    o.o_total = o.o_sub_total + o.o_tax;
    data.orders.push_back(std::move(o));

    CcXact cx;
    cx.cx_o_id = i;
    cx.cx_type = kCcTypes[rng.NextBounded(std::size(kCcTypes))];
    cx.cx_num = PadNumber(rng.NextInt(0, 9999999999999999LL), 16);
    cx.cx_name = data.customers[static_cast<size_t>(o.o_c_id - 1)].c_fname +
                 " " +
                 data.customers[static_cast<size_t>(o.o_c_id - 1)].c_lname;
    cx.cx_expire = datagen::WordPool::RandomDate(rng, 2003, 2008).substr(0, 7);
    cx.cx_auth_id = PadNumber(rng.NextInt(0, 999999), 6);
    cx.cx_xact_amt = o.o_total;
    cx.cx_xact_date = o.o_date;
    cx.cx_co_id = rng.NextInt(1, scale.countries);
    data.cc_xacts.push_back(std::move(cx));
  }

  return data;
}

}  // namespace xbench::tpcw
