#ifndef XBENCH_TPCW_POPULATE_H_
#define XBENCH_TPCW_POPULATE_H_

#include "common/random.h"
#include "datagen/word_pool.h"
#include "tpcw/rows.h"

namespace xbench::tpcw {

/// Cardinalities for a population run. The DC generators size these by
/// solving the target byte count against measured per-row XML sizes.
struct PopulateScale {
  int64_t items = 100;
  int64_t customers = 100;
  int64_t orders = 100;
  int64_t authors = 50;        // >= 1
  int64_t countries = 20;      // fixed small domain
  int64_t publishers = 20;
};

/// Fills every table with TPC-W-flavoured synthetic rows; deterministic in
/// (seed). Referential integrity holds: every FK points at a generated PK.
TpcwData Populate(const PopulateScale& scale, uint64_t seed,
                  const datagen::WordPool& words);

}  // namespace xbench::tpcw

#endif  // XBENCH_TPCW_POPULATE_H_
