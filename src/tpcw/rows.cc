#include "tpcw/rows.h"

#include "common/strings.h"

namespace xbench::tpcw {

std::string ItemIdString(int64_t i_id) { return "I" + PadNumber(i_id, 6); }
std::string OrderIdString(int64_t o_id) { return "O" + PadNumber(o_id, 6); }
std::string AuthorIdString(int64_t a_id) { return "AU" + PadNumber(a_id, 5); }
std::string CustomerIdString(int64_t c_id) { return "C" + PadNumber(c_id, 6); }

const std::vector<std::string>& ShipTypes() {
  static const auto* kTypes = new std::vector<std::string>{
      "AIR", "COURIER", "EXPRESS", "GROUND", "MAIL", "SHIP"};
  return *kTypes;
}

const std::vector<std::string>& OrderStatuses() {
  static const auto* kStatuses = new std::vector<std::string>{
      "PENDING", "PROCESSING", "SHIPPED", "DENIED"};
  return *kStatuses;
}

}  // namespace xbench::tpcw
