# Golden-plan snapshot check: `xqlint --explain [extra args] --class all
# --query all` must reproduce the checked-in golden byte for byte. Run as
#   cmake -DXQLINT=<binary> -DGOLDEN=<golden> -DACTUAL=<scratch>
#         [-DEXTRA_ARGS=--indexes] -P this
# Regenerate a golden after an intentional planner change with
#   build/tools/xqlint --explain [extra args] --class all --query all \
#       > tools/golden/<golden>.txt
# (--indexes loads the canonical sample database, builds the Table 3 +
# text indexes, and prints the cost-based access-path choice per query —
# everything is seeded, so the output is deterministic.)
execute_process(
  COMMAND ${XQLINT} --explain ${EXTRA_ARGS} --class all --query all
  OUTPUT_FILE ${ACTUAL}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "xqlint --explain exited with ${rc}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${GOLDEN} ${ACTUAL}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "plan snapshot drift: ${ACTUAL} differs from ${GOLDEN}; diff them and, "
    "if the new plans are intended, regenerate the golden file")
endif()
