# Golden-plan snapshot check: `xqlint --explain --class all --query all`
# must reproduce tools/golden/xqlint_explain.txt byte for byte. Run as
#   cmake -DXQLINT=<binary> -DGOLDEN=<golden> -DACTUAL=<scratch> -P this
# Regenerate the golden after an intentional planner change with
#   build/tools/xqlint --explain --class all --query all \
#       > tools/golden/xqlint_explain.txt
execute_process(
  COMMAND ${XQLINT} --explain --class all --query all
  OUTPUT_FILE ${ACTUAL}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "xqlint --explain exited with ${rc}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${GOLDEN} ${ACTUAL}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "plan snapshot drift: ${ACTUAL} differs from ${GOLDEN}; diff them and, "
    "if the new plans are intended, regenerate the golden file")
endif()
