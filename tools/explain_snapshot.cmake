# Golden-plan snapshot check: `xqlint <mode> [extra args] --class all
# --query all` must reproduce the checked-in golden byte for byte. Run as
#   cmake -DXQLINT=<binary> -DGOLDEN=<golden> -DACTUAL=<scratch>
#         [-DMODE=--verify] [-DEXTRA_ARGS=--indexes] -P this
# MODE defaults to --explain. Regenerate a golden after an intentional
# planner or verifier change with
#   build/tools/xqlint <mode> [extra args] --class all --query all \
#       > tools/golden/<golden>.txt
# (--indexes and --verify load the canonical sample database and build
# the Table 3 + text indexes — everything is seeded, so the output is
# deterministic.)
if(NOT MODE)
  set(MODE --explain)
endif()
execute_process(
  COMMAND ${XQLINT} ${MODE} ${EXTRA_ARGS} --class all --query all
  OUTPUT_FILE ${ACTUAL}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "xqlint ${MODE} exited with ${rc}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${GOLDEN} ${ACTUAL}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "plan snapshot drift: ${ACTUAL} differs from ${GOLDEN}; diff them and, "
    "if the new plans are intended, regenerate the golden file")
endif()
