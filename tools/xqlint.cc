// xqlint: static schema analysis of the XBench canned queries.
//
// For each selected database class, builds the canonical class schema
// (DTD inferred from a deterministic sample database, plus instance
// statistics), then parses and analyzes every selected query, printing an
// explain-style report: diagnostics, per-path cardinality classes, and
// the concrete child chains each `//` step resolves to (the paper's §2.2
// "unknown steps", Q8/Q9).
//
// With --explain, each analyzed query is additionally compiled through the
// query planner (guided walks on, statistics-based pruning on — the
// statistics here describe exactly the sample database the schema came
// from) and the logical + physical plan trees are printed. The rendering
// is deterministic; the xqlint_explain_snapshots test diffs it against
// tools/golden/xqlint_explain.txt.
//
// With --explain --profile, each compiled plan is additionally *executed*
// over the canonical sample database (the one the schema was inferred
// from, see analysis::CanonicalSampleConfig) and an EXPLAIN ANALYZE-style
// per-operator table is printed: rows out, invocations, inclusive and
// self time per operator.
//
// With --explain --indexes, the canonical sample database is loaded into
// a native engine, the class's Table 3 value indexes plus a text index
// are created, and each query compiles cost-based (AccessPathMode::kAuto)
// against the engine's index catalog; an "access-path:" line shows the
// planner's decision for each query. The rendering is deterministic and
// diffed against tools/golden/xqlint_explain_indexes.txt by the
// xqlint_explain_index_snapshots test.
//
// With --verify, every selected query is compiled under all four access-
// path modes (Auto, ForceGuided, ForceScan, ForceIndex — the first and
// last cost-based against the class's Table 3 + text index catalog) at
// parallelism bounds 1, 2 and 4, each compile running the static plan
// verifier (xquery/verify, DESIGN.md §14). Any contract violation fails
// the run and prints the structured diagnostics; the per-operator
// property lattice derived for the (Auto, x1) plan is printed and diffed
// against tools/golden/xqlint_verify.txt by the plan_verify_all test.
//
// Usage:
//   xqlint [--class TC/SD|TC/MD|DC/SD|DC/MD|all] [--query Q1..Q20|all]
//          [--verbose] [--explain] [--profile] [--indexes]
//          [--parallelism N] [--verify]
//
// --parallelism N (requires --explain) compiles with
// CompilationOptions::parallelism.max_intra = N; parallel-eligible
// physical operators render with a " [parallel xN]" suffix. The default
// of 1 keeps the rendering identical to the golden snapshot.
//
// Exit status: 0 when every selected query parses and has no error
// diagnostics (and, under --explain, compiles and — with --profile —
// executes); 1 otherwise.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/class_schemas.h"
#include "datagen/generator.h"
#include "engines/native_engine.h"
#include "workload/queries.h"
#include "workload/runner.h"
#include "xquery/evaluator.h"
#include "xquery/exec/exec.h"
#include "xquery/parser.h"
#include "xquery/plan/cache.h"
#include "xquery/plan/catalog.h"
#include "xquery/verify/verifier.h"

namespace {

using xbench::analysis::AnalysisReport;
using xbench::analysis::Analyze;
using xbench::analysis::CanonicalClassSchema;
using xbench::analysis::ClassSchema;
using xbench::datagen::DbClass;
using xbench::workload::DeriveParams;
using xbench::workload::QueryId;
using xbench::workload::QueryName;
using xbench::workload::QueryParams;
using xbench::workload::XQueryFor;

constexpr DbClass kAllClasses[] = {DbClass::kTcSd, DbClass::kTcMd,
                                   DbClass::kDcSd, DbClass::kDcMd};
constexpr int kQueryCount = 20;

bool ParseClass(const std::string& text, std::vector<DbClass>& out) {
  if (text == "all") {
    out.assign(std::begin(kAllClasses), std::end(kAllClasses));
    return true;
  }
  for (DbClass cls : kAllClasses) {
    if (text == xbench::datagen::DbClassName(cls)) {
      out = {cls};
      return true;
    }
  }
  return false;
}

bool ParseQueryArg(const std::string& text, std::vector<QueryId>& out) {
  if (text == "all") {
    out.clear();
    for (int i = 0; i < kQueryCount; ++i) {
      out.push_back(static_cast<QueryId>(i));
    }
    return true;
  }
  for (int i = 0; i < kQueryCount; ++i) {
    const auto id = static_cast<QueryId>(i);
    if (text == QueryName(id)) {
      out = {id};
      return true;
    }
  }
  return false;
}

/// Lints one (class, query) cell. Returns false on parse failure or error
/// diagnostics. Undefined cells (empty query text) are skipped silently
/// unless verbose.
bool LintOne(DbClass cls, QueryId id, const ClassSchema& schema,
             const QueryParams& params, bool verbose) {
  const std::string xquery =
      XQueryFor(id, cls, params);
  if (xquery.empty()) {
    if (verbose) {
      std::printf("  %-4s (not defined for this class)\n", QueryName(id));
    }
    return true;
  }
  auto parsed = xbench::xquery::ParseQuery(xquery);
  if (!parsed.ok()) {
    std::printf("  %-4s PARSE ERROR: %s\n", QueryName(id),
                parsed.status().ToString().c_str());
    return false;
  }
  AnalysisReport report = Analyze(**parsed, schema.Context());
  const bool clean = report.diagnostics.empty();
  if (verbose || !clean) {
    std::printf("  %-4s %s", QueryName(id),
                report.HasErrors() ? "FAIL"
                                   : (clean ? "ok" : "ok (warnings)"));
    if (report.resolved_steps > 0) {
      std::printf("  [%d // step%s resolved]", report.resolved_steps,
                  report.resolved_steps == 1 ? "" : "s");
    }
    std::printf("\n");
    std::printf("%s", report.ToString().c_str());
  }
  return !report.HasErrors();
}

/// Prefixes every line of a plan rendering for nesting under the query
/// header.
void PrintIndented(const std::string& text) {
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::printf("    %.*s\n", static_cast<int>(end - start),
                text.c_str() + start);
    start = end + 1;
  }
}

/// Runs `compiled` over the canonical sample database and prints the
/// per-operator profile (xqlint --explain --profile).
bool ProfileOne(QueryId id, const xbench::xquery::plan::CompiledQuery& compiled,
                const xbench::datagen::GeneratedDatabase& sample_db) {
  xbench::xquery::Sequence input;
  input.reserve(sample_db.documents.size());
  for (const auto& doc : sample_db.documents) {
    input.push_back(xbench::xquery::Item::Node(doc.dom.root()));
  }
  xbench::xquery::Bindings bindings;
  bindings["input"] = std::move(input);
  xbench::xquery::EvalOptions options;
  options.use_step_expansions = true;
  xbench::xquery::exec::ExecStats stats;
  auto result = xbench::xquery::exec::Execute(compiled.physical, bindings,
                                              options, &stats);
  if (!result.ok()) {
    std::printf("  %-4s EXEC ERROR: %s\n", QueryName(id),
                result.status().ToString().c_str());
    return false;
  }
  std::printf("   profile (sample db, %zu items out, %.3fms):\n",
              result->items.size(), stats.total_millis);
  std::printf("    %-42s %10s %8s %10s %10s\n", "operator", "rows", "calls",
              "millis", "self_ms");
  for (const xbench::xquery::exec::OperatorStats& op : stats.operators) {
    std::string label(static_cast<size_t>(op.depth) * 2, ' ');
    label += op.label;
    std::printf("    %-42s %10llu %8llu %10.3f %10.3f\n", label.c_str(),
                static_cast<unsigned long long>(op.rows_out),
                static_cast<unsigned long long>(op.invocations), op.millis,
                op.self_millis);
  }
  return true;
}

/// Explains one (class, query) cell: analyzes, compiles with guided walks
/// and statistics-based pruning enabled (sound here — the statistics
/// describe exactly the sample database the schema was inferred from),
/// and prints the logical and physical plan trees. With `catalog`
/// non-null the compile is cost-based (kAuto) against that index catalog
/// and the access-path decision is printed. With `sample_db` non-null the
/// plan is also executed over it and profiled.
bool ExplainOne(DbClass cls, QueryId id, const ClassSchema& schema,
                const QueryParams& params, int parallelism,
                const xbench::xquery::plan::IndexCatalog* catalog,
                const xbench::datagen::GeneratedDatabase* sample_db) {
  const std::string xquery = XQueryFor(id, cls, params);
  if (xquery.empty()) return true;
  auto parsed = xbench::xquery::ParseQuery(xquery);
  if (!parsed.ok()) {
    std::printf("  %-4s PARSE ERROR: %s\n", QueryName(id),
                parsed.status().ToString().c_str());
    return false;
  }
  AnalysisReport report = Analyze(**parsed, schema.Context());
  if (report.HasErrors()) {
    std::printf("  %-4s FAIL\n%s", QueryName(id), report.ToString().c_str());
    return false;
  }
  xbench::xquery::plan::CompilationOptions options;
  // Without a catalog this reproduces the classic explain rendering:
  // guided walks everywhere chains exist, never probes. With one, the
  // cost model chooses among guided walks, scans and index probes.
  options.access_path.mode =
      catalog != nullptr ? xbench::xquery::plan::AccessPathMode::kAuto
                         : xbench::xquery::plan::AccessPathMode::kForceGuided;
  options.cost_model.trust_statistics = true;
  options.parallelism.max_intra = parallelism;
  auto compiled = xbench::xquery::plan::Compile(
      std::move(*parsed), &report.annotations, options, catalog);
  if (!compiled.ok()) {
    std::printf("  %-4s COMPILE ERROR: %s\n", QueryName(id),
                compiled.status().ToString().c_str());
    return false;
  }
  std::printf("  %s\n", QueryName(id));
  if (catalog != nullptr) {
    std::printf("   access-path: %s\n",
                (*compiled)->logical.access_path_summary.c_str());
  }
  std::printf("   logical:\n");
  PrintIndented((*compiled)->logical.ToString());
  std::printf("   physical:\n");
  PrintIndented((*compiled)->physical.ToString());
  if (sample_db != nullptr) {
    return ProfileOne(id, **compiled, *sample_db);
  }
  return true;
}

/// Verifies one (class, query) cell: compiles under every access-path
/// mode × parallelism {1, 2, 4} with the static plan verifier on, then
/// prints the derived property lattice of the cost-based scalar plan
/// (xqlint --verify). Returns false when any combination fails to
/// compile or verify.
bool VerifyOne(DbClass cls, QueryId id, const ClassSchema& schema,
               const QueryParams& params,
               const xbench::xquery::plan::IndexCatalog* catalog) {
  const std::string xquery = XQueryFor(id, cls, params);
  if (xquery.empty()) return true;
  std::printf("  %s\n", QueryName(id));
  struct Mode {
    const char* label;
    xbench::xquery::plan::AccessPathMode mode;
  };
  const Mode modes[] = {
      {"Auto", xbench::xquery::plan::AccessPathMode::kAuto},
      {"ForceGuided", xbench::xquery::plan::AccessPathMode::kForceGuided},
      {"ForceScan", xbench::xquery::plan::AccessPathMode::kForceScan},
      {"ForceIndex", xbench::xquery::plan::AccessPathMode::kForceIndex},
  };
  bool ok = true;
  for (const Mode& mode : modes) {
    for (int parallelism : {1, 2, 4}) {
      auto parsed = xbench::xquery::ParseQuery(xquery);
      if (!parsed.ok()) {
        std::printf("   PARSE ERROR: %s\n",
                    parsed.status().ToString().c_str());
        return false;
      }
      AnalysisReport report = Analyze(**parsed, schema.Context());
      if (report.HasErrors()) {
        std::printf("   ANALYSIS FAIL\n%s", report.ToString().c_str());
        return false;
      }
      xbench::xquery::plan::CompilationOptions options;
      options.access_path.mode = mode.mode;
      options.cost_model.trust_statistics = true;
      options.parallelism.max_intra = parallelism;
      options.verify = true;
      auto compiled = xbench::xquery::plan::Compile(
          std::move(*parsed), &report.annotations, options, catalog);
      if (!compiled.ok()) {
        std::printf("   verify %-11s x%d: FAIL: %s\n", mode.label,
                    parallelism, compiled.status().ToString().c_str());
        ok = false;
        continue;
      }
      xbench::xquery::verify::VerifyResult verified =
          xbench::xquery::verify::VerifyPlan((*compiled)->logical,
                                             (*compiled)->physical, options,
                                             catalog);
      if (!verified.ok()) {
        std::printf("   verify %-11s x%d: %zu violation(s)\n", mode.label,
                    parallelism, verified.diagnostics.size());
        for (const auto& diag : verified.diagnostics) {
          std::printf("    %s\n", diag.ToString().c_str());
        }
        ok = false;
        continue;
      }
      std::printf("   verify %-11s x%d: ok (%zu operators)\n", mode.label,
                  parallelism, verified.derived.size());
      if (mode.mode == xbench::xquery::plan::AccessPathMode::kAuto &&
          parallelism == 1) {
        std::printf("   properties (Auto x1):\n");
        for (const std::string& line : verified.derived) {
          std::printf("    %s\n", line.c_str());
        }
      }
    }
  }
  return ok;
}

/// Loads the canonical sample database for `cls` into a native engine and
/// creates the class's Table 3 value indexes plus one text index, then
/// hands back the engine's planner-facing catalog snapshot (xqlint
/// --explain --indexes). Null on load failure (reported to stderr).
std::unique_ptr<xbench::xquery::plan::IndexCatalog> BuildCatalog(
    DbClass cls, const xbench::datagen::GeneratedDatabase& sample_db) {
  xbench::engines::NativeEngine engine;
  xbench::Status loaded =
      engine.BulkLoad(cls, xbench::workload::ToLoadDocuments(sample_db));
  if (!loaded.ok()) {
    std::fprintf(stderr, "sample load failed for %s: %s\n",
                 xbench::datagen::DbClassName(cls),
                 loaded.ToString().c_str());
    return nullptr;
  }
  xbench::Status indexed =
      xbench::workload::CreateTable3Indexes(engine, cls);
  if (!indexed.ok()) {
    std::fprintf(stderr, "index build failed for %s: %s\n",
                 xbench::datagen::DbClassName(cls),
                 indexed.ToString().c_str());
    return nullptr;
  }
  xbench::engines::IndexSpec text;
  text.name = "words";
  text.kind = xbench::engines::IndexKind::kText;
  indexed = engine.CreateIndex(text);
  if (!indexed.ok()) {
    std::fprintf(stderr, "text index build failed for %s: %s\n",
                 xbench::datagen::DbClassName(cls),
                 indexed.ToString().c_str());
    return nullptr;
  }
  return std::make_unique<xbench::xquery::plan::IndexCatalog>(
      engine.IndexCatalogSnapshot());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<DbClass> classes(std::begin(kAllClasses),
                               std::end(kAllClasses));
  std::vector<QueryId> queries;
  ParseQueryArg("all", queries);
  bool verbose = false;
  bool explain = false;
  bool profile = false;
  bool indexes = false;
  bool verify = false;
  int parallelism = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--class" && has_value) {
      if (!ParseClass(argv[++i], classes)) {
        std::fprintf(stderr, "unknown class '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--query" && has_value) {
      if (!ParseQueryArg(argv[++i], queries)) {
        std::fprintf(stderr, "unknown query '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--indexes") {
      indexes = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--parallelism" && has_value) {
      parallelism = std::atoi(argv[++i]);
      if (parallelism < 1) {
        std::fprintf(stderr, "--parallelism must be >= 1\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: xqlint [--class TC/SD|TC/MD|DC/SD|DC/MD|all] "
                   "[--query Q1..Q20|all] [--verbose] [--explain] "
                   "[--profile] [--indexes] [--parallelism N] [--verify]\n");
      return 2;
    }
  }
  if (profile && !explain) {
    std::fprintf(stderr, "--profile requires --explain\n");
    return 2;
  }
  if (indexes && !explain) {
    std::fprintf(stderr, "--indexes requires --explain\n");
    return 2;
  }
  if (parallelism > 1 && !explain) {
    std::fprintf(stderr, "--parallelism requires --explain\n");
    return 2;
  }
  if (verify && (explain || profile || indexes)) {
    std::fprintf(stderr, "--verify is a standalone mode\n");
    return 2;
  }

  int failures = 0;
  for (DbClass cls : classes) {
    const ClassSchema& schema = CanonicalClassSchema(cls);
    const QueryParams params = DeriveParams(cls, schema.seeds);
    std::printf("class %s (%zu element types, roots:",
                xbench::datagen::DbClassName(cls),
                schema.dtd.ElementNames().size());
    for (const std::string& root : schema.roots) {
      std::printf(" %s", root.c_str());
    }
    std::printf(")\n");
    xbench::datagen::GeneratedDatabase sample_db;
    if (profile || indexes || verify) {
      sample_db =
          xbench::datagen::Generate(cls, xbench::analysis::CanonicalSampleConfig());
    }
    std::unique_ptr<xbench::xquery::plan::IndexCatalog> catalog;
    if (indexes || verify) {
      catalog = BuildCatalog(cls, sample_db);
      if (catalog == nullptr) {
        ++failures;
        continue;
      }
    }
    for (QueryId id : queries) {
      if (verify) {
        if (!VerifyOne(cls, id, schema, params, catalog.get())) {
          ++failures;
        }
      } else if (explain) {
        if (!ExplainOne(cls, id, schema, params, parallelism, catalog.get(),
                        profile ? &sample_db : nullptr)) {
          ++failures;
        }
      } else if (!LintOne(cls, id, schema, params, verbose)) {
        ++failures;
      }
    }
  }
  if (failures != 0) {
    std::printf("%d quer%s failed analysis\n", failures,
                failures == 1 ? "y" : "ies");
    return 1;
  }
  std::printf("all queries clean\n");
  return 0;
}
