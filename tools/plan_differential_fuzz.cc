// Differential fuzzing oracle over generated, schema-aware XQuery.
//
// Feeds analysis::QueryGenerator output (deterministic in --seed) through
// every answer path the native engine has — the tree-walking interpreter,
// the compiled full-scan plan, the schema-guided plan, and the cost-based
// (kAuto) plan compiled against the engine's live index catalog — and
// requires byte-identical QueryResult::ToText() from all of them. Each
// query's compiled plans additionally draw a random intra-query
// parallelism bound (1, 2, or 4 — deterministic in --seed), so the
// morsel-parallel execution paths are fuzzed against the scalar
// interpreter too. Index availability itself is randomized: the engine
// cycles through three index configurations (none / Table 3 value
// indexes / Table 3 + text index) during the run, so cost-based plans are
// fuzzed both with probes available and without. The
// same queries are cross-checked against the CLOB engine per document
// (MD classes, decomposable queries) as value multisets, and the shredded
// relational image is validated column-by-column against the source
// documents via the DAD's own extraction semantics.
//
//   plan_differential_fuzz --class tcsd|tcmd|dcsd|dcmd
//                          [--iters N] [--seed S]
//
// Exit 1 on the first divergence, with the query text and both answers.
// N defaults to $XBENCH_FUZZ_ITERS or 1000; the ctest suite runs one
// process per class so the four classes fuzz in parallel under ctest -j.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/class_schemas.h"
#include "analysis/query_gen.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/sync.h"
#include "datagen/generator.h"
#include "engines/clob_engine.h"
#include "engines/native_engine.h"
#include "engines/shred_engine.h"
#include "engines/shredder.h"
#include "relational/table.h"
#include "workload/runner.h"
#include "xquery/plan/cache.h"

namespace {

using xbench::datagen::DbClass;

struct ClassOption {
  const char* tag;
  DbClass cls;
};
constexpr ClassOption kClassOptions[] = {
    {"tcsd", DbClass::kTcSd},
    {"tcmd", DbClass::kTcMd},
    {"dcsd", DbClass::kDcSd},
    {"dcmd", DbClass::kDcMd},
};

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    const size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

[[noreturn]] void Fail(const std::string& query, const std::string& what,
                       const std::string& lhs, const std::string& rhs) {
  std::fprintf(stderr,
               "plan_differential_fuzz: DIVERGENCE (%s)\n"
               "  query: %s\n  lhs: %s\n  rhs: %s\n",
               what.c_str(), query.c_str(), lhs.substr(0, 2000).c_str(),
               rhs.substr(0, 2000).c_str());
  std::exit(1);
}

std::string Join(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

// Mirror of the shredder's TypedValue conversion (engines/shredder.cc):
// the oracle re-derives each mapped column value from the source DOM and
// must coerce it exactly as the load path did.
xbench::relational::Value TypedValueReplica(const std::string& text,
                                            xbench::relational::ValueType type) {
  using xbench::relational::Value;
  using xbench::relational::ValueType;
  switch (type) {
    case ValueType::kInt: {
      const int64_t v = xbench::ParseInt(text);
      if (v < 0) return Value::Null();
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      const double v = xbench::ParseDouble(text);
      if (std::isnan(v)) return Value::Null();
      return Value::Double(v);
    }
    default:
      return Value::String(text);
  }
}

/// Collects the expected value multiset of one DAD column by walking the
/// source documents the way the shredder does (every instance of the
/// triggering element, nested instances included).
void CollectExpected(const xbench::xml::Node& node,
                     const xbench::engines::TableMap& map,
                     const xbench::engines::ColumnMap& col,
                     std::vector<std::string>& out) {
  if (node.is_element() && node.name() == map.element) {
    auto [found, text] = xbench::engines::ExtractRelPath(node, col.rel_path);
    if (found) {
      const auto value = TypedValueReplica(text, col.type);
      if (!value.is_null()) out.push_back(value.ToText());
    }
  }
  for (const auto& child : node.children()) {
    CollectExpected(*child, map, col, out);
  }
}

/// Validates the shredded relational image: for every mapped (table,
/// column), the non-NULL values in the table must equal (as a multiset)
/// the values the DAD extraction yields from the source DOMs.
void CheckShredImage(xbench::engines::ShredEngine& shred,
                     const xbench::datagen::GeneratedDatabase& db) {
  xbench::ReaderLock lock(shred.collection_mu());
  const xbench::engines::Dad& dad = shred.dad();
  size_t columns_checked = 0;
  for (const auto& map : dad.tables) {
    xbench::relational::Table* table = shred.tables().FindTable(map.table);
    if (table == nullptr) {
      Fail("<shred image>", "DAD table missing", map.table, "");
    }
    for (size_t ci = 0; ci < map.columns.size(); ++ci) {
      const auto& col = map.columns[ci];
      std::vector<std::string> expected;
      for (const auto& doc : db.documents) {
        CollectExpected(*doc.dom.root(), map, col, expected);
      }
      std::vector<std::string> actual;
      const size_t row_index =
          static_cast<size_t>(xbench::engines::kColFirstMapped) + ci;
      table->Scan([&](xbench::storage::RecordId, const xbench::relational::Row& row) {
        if (row_index < row.size() && !row[row_index].is_null()) {
          actual.push_back(row[row_index].ToText());
        }
        return true;
      });
      std::sort(expected.begin(), expected.end());
      std::sort(actual.begin(), actual.end());
      if (expected != actual) {
        Fail("<shred image " + map.table + "." + col.column + ">",
             "shredded column != DAD extraction over source DOMs",
             "expected " + std::to_string(expected.size()) + " values: " +
                 Join(expected).substr(0, 500),
             "actual " + std::to_string(actual.size()) + " values: " +
                 Join(actual).substr(0, 500));
      }
      ++columns_checked;
    }
  }
  std::printf("  shred image: %zu mapped columns match DAD extraction\n",
              columns_checked);
}

}  // namespace

int main(int argc, char** argv) {
  const ClassOption* chosen = nullptr;
  uint64_t iters = 0;
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--class") == 0 && i + 1 < argc) {
      ++i;
      for (const auto& option : kClassOptions) {
        if (std::strcmp(argv[i], option.tag) == 0) chosen = &option;
      }
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  if (chosen == nullptr) {
    std::fprintf(stderr,
                 "usage: %s --class tcsd|tcmd|dcsd|dcmd [--iters N] [--seed S]\n",
                 argv[0]);
    return 2;
  }
  if (iters == 0) {
    const char* env = std::getenv("XBENCH_FUZZ_ITERS");
    iters = env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
    if (iters == 0) iters = 1000;
  }
  const DbClass cls = chosen->cls;

  // The canonical sample database: small, deterministic, and — by
  // construction — conformant to the canonical schema, so the native
  // engine's guided-evaluation gate opens and guided plans are testable.
  const auto& schema = xbench::analysis::CanonicalClassSchema(cls);
  const auto db =
      xbench::datagen::Generate(cls, xbench::analysis::CanonicalSampleConfig());

  auto native_ptr =
      xbench::workload::MakeEngine(xbench::engines::EngineKind::kNative);
  auto* native = dynamic_cast<xbench::engines::NativeEngine*>(native_ptr.get());
  if (native == nullptr) {
    std::fprintf(stderr, "native engine unavailable\n");
    return 2;
  }
  if (auto load = xbench::workload::BulkLoad(*native, db); !load.status.ok()) {
    std::fprintf(stderr, "native load failed: %s\n",
                 load.status.ToString().c_str());
    return 2;
  }
  const bool guided = native->guided_eval_enabled();

  // CLOB refuses the SD classes (single CLOB over the column limit); the
  // per-document cross-check only runs for MD classes.
  std::unique_ptr<xbench::engines::XmlDbms> clob_ptr;
  xbench::engines::ClobEngine* clob = nullptr;
  if (cls == DbClass::kTcMd || cls == DbClass::kDcMd) {
    clob_ptr = xbench::workload::MakeEngine(xbench::engines::EngineKind::kClob);
    clob = dynamic_cast<xbench::engines::ClobEngine*>(clob_ptr.get());
    if (auto load = xbench::workload::BulkLoad(*clob_ptr, db);
        !load.status.ok()) {
      std::fprintf(stderr, "clob load failed: %s\n",
                   load.status.ToString().c_str());
      return 2;
    }
  }

  // Shredded image validation runs once up front (it is a property of the
  // load, not of any query). SD classes can exceed DB2's decomposition
  // limit at some scales; that is an expected Unsupported, not a bug.
  auto shred_ptr =
      xbench::workload::MakeEngine(xbench::engines::EngineKind::kShredDb2);
  std::printf("plan_differential_fuzz: class=%s iters=%llu seed=%llu guided=%d\n",
              chosen->tag, static_cast<unsigned long long>(iters),
              static_cast<unsigned long long>(seed), guided ? 1 : 0);
  if (auto load = xbench::workload::BulkLoad(*shred_ptr, db);
      load.status.ok()) {
    auto* shred = dynamic_cast<xbench::engines::ShredEngine*>(shred_ptr.get());
    CheckShredImage(*shred, db);
  } else {
    std::printf("  shred image: skipped (%s)\n",
                load.status.ToString().c_str());
  }

  xbench::analysis::QueryGenerator gen(schema, seed);
  uint64_t clob_compared = 0;
  uint64_t error_queries = 0;
  uint64_t parallel_plans = 0;
  uint64_t probe_plans = 0;

  // Index-availability sweep: cycle the engine through three index
  // configurations so cost-based plans are fuzzed with and without
  // probes on offer. Each transition is real DDL (drop everything,
  // recreate), which also exercises catalog-epoch bumps and plan-cache
  // invalidation mid-run. The phase sequence is deterministic in --seed.
  constexpr uint64_t kIndexPhaseIters = 128;
  int index_state = -1;
  auto apply_index_state = [&](int state) {
    if (state == index_state) return;
    index_state = state;
    for (const auto& info : native->ListIndexes()) {
      if (auto dropped = native->DropIndex(info.name); !dropped.ok()) {
        Fail("<index ddl>", "DropIndex failed", info.name,
             dropped.ToString());
      }
    }
    if (state >= 1) {
      if (auto created = xbench::workload::CreateTable3Indexes(*native, cls);
          !created.ok()) {
        Fail("<index ddl>", "CreateTable3Indexes failed", created.ToString(),
             "");
      }
    }
    if (state >= 2) {
      xbench::engines::IndexSpec text;
      text.name = "words";
      text.kind = xbench::engines::IndexKind::kText;
      if (auto created = native->CreateIndex(text); !created.ok()) {
        Fail("<index ddl>", "text CreateIndex failed", created.ToString(),
             "");
      }
    }
  };
  // Deterministic per-query draw for the intra-query parallelism bound:
  // plans execute through the same morsel machinery the benchmarks use,
  // and must stay byte-identical to the scalar interpreter regardless of
  // the bound. splitmix64 keeps the stream independent of the query
  // generator's own PRNG state.
  uint64_t parallelism_state = seed ^ 0x9e3779b97f4a7c15ull;
  auto next_parallelism = [&parallelism_state] {
    parallelism_state += 0x9e3779b97f4a7c15ull;
    uint64_t z = parallelism_state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    static constexpr int kBounds[] = {1, 2, 4};
    return kBounds[z % 3];
  };
  struct ModeOption {
    const char* label;
    xbench::xquery::plan::AccessPathMode mode;
    bool needs_guided;
    bool with_catalog;
  };
  constexpr ModeOption kModes[] = {
      {"unguided", xbench::xquery::plan::AccessPathMode::kForceScan, false,
       false},
      {"guided", xbench::xquery::plan::AccessPathMode::kForceGuided, true,
       false},
      {"auto", xbench::xquery::plan::AccessPathMode::kAuto, false, true},
  };
  for (uint64_t i = 0; i < iters; ++i) {
    apply_index_state(static_cast<int>((i / kIndexPhaseIters + seed) % 3));
    const auto generated = gen.Next();
    const std::string& text = generated.text;
    const int parallelism = next_parallelism();
    if (parallelism > 1) ++parallel_plans;

    // Annotations are keyed by AST node identity and Compile consumes the
    // AST, so each execution path analyzes its own copy.
    auto interp_q = xbench::workload::AnalyzeForClassFull(text, cls);
    if (!interp_q.ok()) {
      Fail(text, "generator emitted a query the analyzer rejects",
           interp_q.status().ToString(), "");
    }
    auto interp = native->Query(*interp_q->ast);

    for (const ModeOption& mode : kModes) {
      if (mode.needs_guided && !guided) continue;
      auto compiled_q = xbench::workload::AnalyzeForClassFull(text, cls);
      xbench::xquery::plan::CompilationOptions options;
      options.access_path.mode = mode.mode;
      options.access_path.allow_guided = guided;
      options.parallelism.max_intra = parallelism;
      // Every fuzz-generated plan also runs the static verifier, so the
      // oracle rejects contract violations even when the answers agree.
      options.verify = true;
      const xbench::xquery::plan::IndexCatalog catalog =
          native->IndexCatalogSnapshot();
      auto compiled = xbench::xquery::plan::Compile(
          std::move(compiled_q->ast), &compiled_q->report.annotations,
          options, mode.with_catalog ? &catalog : nullptr);
      if (!compiled.ok()) {
        Fail(text, "plan compilation failed", compiled.status().ToString(), "");
      }
      // Probe choices render with parens ("IndexScan(name)",
      // "TextProbe(name)"); "guided-walk"/"full-scan" summaries do not.
      if (mode.with_catalog &&
          (*compiled)->logical.access_path_summary.find('(') !=
              std::string::npos) {
        ++probe_plans;
      }
      auto plan_result = native->ExecutePlan(**compiled);
      if (interp.ok() != plan_result.ok()) {
        Fail(text, std::string("interpreter vs ") + mode.label +
                       " plan status",
             interp.ok() ? "ok" : interp.status().ToString(),
             plan_result.ok() ? "ok" : plan_result.status().ToString());
      }
      if (interp.ok()) {
        const std::string lhs = interp->ToText();
        const std::string rhs = plan_result->ToText();
        if (lhs != rhs) {
          Fail(text,
               std::string("interpreter vs ") + mode.label + " plan answer",
               lhs, rhs);
        }
      }
    }

    if (!interp.ok()) {
      ++error_queries;
      continue;
    }

    if (clob != nullptr && generated.document_decomposable) {
      // Per-document evaluation concatenated across the collection must
      // reproduce the collection answer as a value multiset (document
      // order differs between the engines' registries).
      std::vector<std::string> clob_lines;
      {
        xbench::ReaderLock lock(clob->collection_mu());
        for (const std::string& name : clob->DocumentNames()) {
          auto per_doc = clob->QueryDocument(name, text);
          if (!per_doc.ok()) {
            Fail(text, "clob per-document query failed on " + name,
                 per_doc.status().ToString(), "");
          }
          for (auto& line : SplitLines(per_doc->ToText())) {
            clob_lines.push_back(std::move(line));
          }
        }
      }
      std::vector<std::string> native_lines = SplitLines(interp->ToText());
      std::sort(native_lines.begin(), native_lines.end());
      std::sort(clob_lines.begin(), clob_lines.end());
      if (native_lines != clob_lines) {
        Fail(text, "native vs clob value multiset",
             std::to_string(native_lines.size()) + " values: " +
                 Join(native_lines).substr(0, 1000),
             std::to_string(clob_lines.size()) + " values: " +
                 Join(clob_lines).substr(0, 1000));
      }
      ++clob_compared;
    }
  }

  std::printf(
      "  %llu queries: interpreter == %s plan%s, %llu runtime errors "
      "(status-matched), %llu clob-compared, %llu morsel-parallel plans, "
      "%llu index-probe plans\n",
      static_cast<unsigned long long>(iters),
      guided ? "unguided == guided == auto" : "unguided == auto",
      guided ? "" : " (guided gate closed)",
      static_cast<unsigned long long>(error_queries),
      static_cast<unsigned long long>(clob_compared),
      static_cast<unsigned long long>(parallel_plans),
      static_cast<unsigned long long>(probe_plans));
  return 0;
}
