// xbench_lint: token-level source-convention checker for this repo. No
// libclang — every rule works off the raw text of the checked-in files
// (with comments and string literals stripped where the rule is about
// code, and kept where the rule is about comments), so the binary builds
// anywhere the project builds and runs in milliseconds as the `repo_lint`
// ctest and static-gate step.
//
// Rules:
//   1. raw-mutex      No `std::mutex` / `std::shared_mutex` in src/ or
//                     tools/ outside src/common/sync.h. Everything takes
//                     the ranked wrappers so the DESIGN.md §9 lock order
//                     stays machine-checked. src/common/lock_rank.cc is
//                     allowlisted: the enforcer's own bookkeeping lock
//                     cannot rank-check itself.
//   2. lock-ranks     The DESIGN.md §9 rank table and the
//                     `enum class LockRank` + `LockRankName` pair in
//                     src/common/lock_rank.{h,cc} must agree 1:1 on
//                     (value, enumerator, name).
//   3. metric-names   Every `"xbench.…"` string literal in src/ or
//                     tools/ must be declared verbatim in
//                     src/obs/metric_names.h (the registry of record),
//                     so the metric namespace is readable in one place
//                     and a typo'd name fails lint instead of silently
//                     splitting a series. `xbench.test.` scratch names
//                     are exempt.
//   4. remove-by      Every `[[deprecated]]` shim must carry a nearby
//                     `// remove-by: PR N` marker, and the marker fails
//                     once stale (N <= the current PR number, counted
//                     from the `- PR` entries in CHANGES.md) — shims
//                     cannot quietly outlive their grace window.
//
// Usage: xbench_lint [--repo-root <dir>]
// Exit: 0 clean, 1 violations (one "file:line: rule: …" line each),
// 2 bad usage / unreadable repo.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

int g_violations = 0;

void Violation(const std::string& file, size_t line, const char* rule,
               const std::string& message) {
  std::fprintf(stderr, "%s:%zu: %s: %s\n", file.c_str(), line, rule,
               message.c_str());
  ++g_violations;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Replaces comments and string/char literals with spaces (newlines kept,
/// so line numbers survive). Good enough for token rules: the result has
/// exactly the code tokens of the input at the same offsets.
std::string StripCommentsAndStrings(const std::string& text) {
  std::string out = text;
  enum { kCode, kLine, kBlock, kString, kChar } state = kCode;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case kCode:
        if (c == '/' && next == '/') state = kLine;
        else if (c == '/' && next == '*') state = kBlock;
        else if (c == '"') state = kString;
        else if (c == '\'') state = kChar;
        if (state != kCode) out[i] = ' ';
        break;
      case kLine:
        if (c == '\n') state = kCode;
        else out[i] = ' ';
        break;
      case kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case kString:
      case kChar:
        if (c == '\\' && next != '\0') {
          out[i] = out[i + 1] = ' ';
          ++i;
        } else {
          if ((state == kString && c == '"') ||
              (state == kChar && c == '\'')) {
            state = kCode;
          }
          if (c != '\n') out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

size_t LineOf(const std::string& text, size_t offset) {
  return 1 + static_cast<size_t>(
                 std::count(text.begin(), text.begin() + offset, '\n'));
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// All .h/.cc files under the given repo-relative directories, sorted for
/// deterministic report order.
std::vector<fs::path> SourceFiles(const fs::path& root,
                                  std::initializer_list<const char*> dirs) {
  std::vector<fs::path> files;
  for (const char* dir : dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string Rel(const fs::path& root, const fs::path& path) {
  return fs::relative(path, root).generic_string();
}

/// The linter's own source spells out the tokens it greps for (needles,
/// rule docs) — exempt it from the literal-matching rules.
constexpr char kSelf[] = "tools/xbench_lint.cc";

// ---------------------------------------------------------------------------
// Rule 1: raw std::mutex / std::shared_mutex outside the sync wrappers.

void CheckRawMutexes(const fs::path& root) {
  const std::set<std::string> allowed = {
      "src/common/sync.h",
      // The rank enforcer's own state lock: it cannot be a ranked lock
      // without checking itself recursively.
      "src/common/lock_rank.cc",
  };
  for (const fs::path& path : SourceFiles(root, {"src", "tools"})) {
    const std::string rel = Rel(root, path);
    if (allowed.count(rel) > 0) continue;
    const std::string text = ReadFile(path);
    const std::string code = StripCommentsAndStrings(text);
    for (const char* token : {"std::mutex", "std::shared_mutex"}) {
      for (size_t pos = code.find(token); pos != std::string::npos;
           pos = code.find(token, pos + 1)) {
        // `std::shared_mutex` contains `std::mutex`? No — but guard
        // against matching inside a longer identifier either side.
        const size_t end = pos + std::strlen(token);
        if (end < code.size() &&
            (std::isalnum(static_cast<unsigned char>(code[end])) ||
             code[end] == '_')) {
          continue;
        }
        Violation(rel, LineOf(code, pos), "raw-mutex",
                  std::string(token) +
                      " outside src/common/sync.h; use xbench::Mutex / "
                      "xbench::SharedMutex with a LockRank");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 2: DESIGN.md §9 table <-> LockRank enum <-> LockRankName, 1:1.

struct RankEntry {
  int value = 0;
  std::string name;  // "engine.registry"
};

/// `|   10 | `kEngineRegistry`  | `engine.registry` | …` table rows.
std::map<std::string, RankEntry> ParseDesignTable(const fs::path& root) {
  std::map<std::string, RankEntry> table;
  const std::vector<std::string> lines = SplitLines(ReadFile(root / "DESIGN.md"));
  for (const std::string& line : lines) {
    size_t cursor = line.find_first_not_of(" \t");
    if (cursor == std::string::npos || line[cursor] != '|') continue;
    std::vector<std::string> cells;
    std::string cell;
    for (size_t i = cursor + 1; i < line.size(); ++i) {
      if (line[i] == '|') {
        cells.push_back(cell);
        cell.clear();
      } else {
        cell += line[i];
      }
    }
    if (cells.size() < 3) continue;
    char* end = nullptr;
    const long value = std::strtol(cells[0].c_str(), &end, 10);
    if (end == cells[0].c_str()) continue;  // header / separator rows
    auto backticked = [](const std::string& s) -> std::string {
      const size_t open = s.find('`');
      if (open == std::string::npos) return "";
      const size_t close = s.find('`', open + 1);
      if (close == std::string::npos) return "";
      return s.substr(open + 1, close - open - 1);
    };
    const std::string enumerator = backticked(cells[1]);
    const std::string name = backticked(cells[2]);
    if (enumerator.rfind('k', 0) != 0 || name.empty()) continue;
    table[enumerator] = RankEntry{static_cast<int>(value), name};
  }
  return table;
}

/// `kEngineRegistry = 10,` lines of `enum class LockRank`.
std::map<std::string, int> ParseLockRankEnum(const std::string& header) {
  std::map<std::string, int> values;
  const size_t begin = header.find("enum class LockRank");
  const size_t close = header.find("};", begin);
  if (begin == std::string::npos || close == std::string::npos) return values;
  std::istringstream in(header.substr(begin, close - begin));
  std::string line;
  while (std::getline(in, line)) {
    const size_t k = line.find_first_not_of(" \t");
    if (k == std::string::npos || line[k] != 'k') continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    std::string enumerator = line.substr(k, eq - k);
    while (!enumerator.empty() && std::isspace(static_cast<unsigned char>(
                                      enumerator.back()))) {
      enumerator.pop_back();
    }
    values[enumerator] = std::atoi(line.c_str() + eq + 1);
  }
  return values;
}

/// `case LockRank::kX:` / `return "name";` pairs of LockRankName().
std::map<std::string, std::string> ParseLockRankNames(const std::string& src) {
  std::map<std::string, std::string> names;
  for (size_t pos = src.find("case LockRank::"); pos != std::string::npos;
       pos = src.find("case LockRank::", pos + 1)) {
    const size_t start = pos + std::strlen("case LockRank::");
    const size_t colon = src.find(':', start);
    const size_t ret = src.find("return \"", start);
    if (colon == std::string::npos || ret == std::string::npos) break;
    const size_t open = ret + std::strlen("return \"");
    const size_t close = src.find('"', open);
    if (close == std::string::npos) break;
    names[src.substr(start, colon - start)] = src.substr(open, close - open);
  }
  return names;
}

void CheckLockRankTable(const fs::path& root) {
  const std::string header_rel = "src/common/lock_rank.h";
  const std::string source_rel = "src/common/lock_rank.cc";
  const std::map<std::string, RankEntry> design = ParseDesignTable(root);
  const std::map<std::string, int> enumerators =
      ParseLockRankEnum(ReadFile(root / header_rel));
  const std::map<std::string, std::string> names =
      ParseLockRankNames(ReadFile(root / source_rel));
  if (design.empty() || enumerators.empty() || names.empty()) {
    Violation("DESIGN.md", 0, "lock-ranks",
              "could not parse the §9 rank table / LockRank enum / "
              "LockRankName switch");
    return;
  }
  for (const auto& [enumerator, entry] : design) {
    auto it = enumerators.find(enumerator);
    if (it == enumerators.end()) {
      Violation("DESIGN.md", 0, "lock-ranks",
                "table row LockRank::" + enumerator +
                    " has no enumerator in " + header_rel);
    } else if (it->second != entry.value) {
      Violation(header_rel, 0, "lock-ranks",
                enumerator + " = " + std::to_string(it->second) +
                    " but the DESIGN.md table says " +
                    std::to_string(entry.value));
    }
    auto name_it = names.find(enumerator);
    if (name_it == names.end()) {
      Violation(source_rel, 0, "lock-ranks",
                "LockRankName has no case for LockRank::" + enumerator);
    } else if (name_it->second != entry.name) {
      Violation(source_rel, 0, "lock-ranks",
                "LockRankName(" + enumerator + ") = \"" + name_it->second +
                    "\" but the DESIGN.md table says \"" + entry.name + "\"");
    }
  }
  for (const auto& [enumerator, value] : enumerators) {
    if (design.count(enumerator) == 0) {
      Violation(header_rel, 0, "lock-ranks",
                "LockRank::" + enumerator + " (" + std::to_string(value) +
                    ") is missing from the DESIGN.md §9 table");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 3: every "xbench.…" literal declared in src/obs/metric_names.h.

std::set<std::string> ExtractXbenchLiterals(const std::string& text) {
  std::set<std::string> literals;
  const std::string needle = "\"xbench.";
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    const size_t open = pos + 1;
    const size_t close = text.find('"', open);
    if (close == std::string::npos) break;
    literals.insert(text.substr(open, close - open));
  }
  return literals;
}

void CheckMetricNames(const fs::path& root) {
  const std::string registry_rel = "src/obs/metric_names.h";
  const std::set<std::string> declared =
      ExtractXbenchLiterals(ReadFile(root / registry_rel));
  if (declared.empty()) {
    Violation(registry_rel, 0, "metric-names",
              "registry header declares no xbench.* names");
    return;
  }
  for (const fs::path& path : SourceFiles(root, {"src", "tools"})) {
    const std::string rel = Rel(root, path);
    if (rel == registry_rel || rel == kSelf) continue;
    const std::string text = ReadFile(path);
    const std::string needle = "\"xbench.";
    for (size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + 1)) {
      const size_t open = pos + 1;
      const size_t close = text.find('"', open);
      if (close == std::string::npos) break;
      const std::string literal = text.substr(open, close - open);
      if (literal.rfind("xbench.test.", 0) == 0) continue;  // scratch names
      if (declared.count(literal) == 0) {
        Violation(rel, LineOf(text, pos), "metric-names",
                  "\"" + literal + "\" is not declared in " + registry_rel);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 4: [[deprecated]] shims carry a live `// remove-by: PR N` marker.

/// Current PR number = count of `- PR` entries in CHANGES.md (the file
/// appends exactly one line per PR).
int CurrentPrNumber(const fs::path& root) {
  int count = 0;
  for (const std::string& line : SplitLines(ReadFile(root / "CHANGES.md"))) {
    if (line.rfind("- PR", 0) == 0) ++count;
  }
  return count;
}

void CheckDeprecatedShims(const fs::path& root) {
  const int current_pr = CurrentPrNumber(root);
  for (const fs::path& path : SourceFiles(root, {"src", "tools"})) {
    const std::string rel = Rel(root, path);
    if (rel == kSelf) continue;
    const std::vector<std::string> lines = SplitLines(ReadFile(path));
    for (size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].find("[[deprecated") == std::string::npos) continue;
      // The marker lives in a comment on the attribute's line or within
      // the three lines above it (doc-comment position).
      int remove_by = -1;
      const size_t first = i >= 3 ? i - 3 : 0;
      for (size_t j = first; j <= i && remove_by < 0; ++j) {
        const size_t at = lines[j].find("remove-by: PR ");
        if (at != std::string::npos) {
          remove_by =
              std::atoi(lines[j].c_str() + at + std::strlen("remove-by: PR "));
        }
      }
      if (remove_by < 0) {
        Violation(rel, i + 1, "remove-by",
                  "[[deprecated]] shim without a `// remove-by: PR N` "
                  "marker");
      } else if (remove_by <= current_pr) {
        Violation(rel, i + 1, "remove-by",
                  "stale shim: marked remove-by PR " +
                      std::to_string(remove_by) + " and CHANGES.md is at PR " +
                      std::to_string(current_pr) + " — delete it");
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repo-root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else {
      std::fprintf(stderr, "usage: xbench_lint [--repo-root <dir>]\n");
      return 2;
    }
  }
  if (!fs::exists(root / "DESIGN.md") || !fs::exists(root / "src")) {
    std::fprintf(stderr, "xbench_lint: %s does not look like the repo root\n",
                 root.string().c_str());
    return 2;
  }
  CheckRawMutexes(root);
  CheckLockRankTable(root);
  CheckMetricNames(root);
  CheckDeprecatedShims(root);
  if (g_violations > 0) {
    std::fprintf(stderr, "xbench_lint: %d violation(s)\n", g_violations);
    return 1;
  }
  std::printf("xbench_lint: clean\n");
  return 0;
}
