#!/usr/bin/env bash
# The full static-analysis gate in one command:
#
#   1. Clang build of the library with -Wthread-safety -Wthread-safety-beta
#      (promoted to errors by the repo-wide -Werror), verifying every
#      lock-capability contract in src/ — plus a grep proving no
#      NO_THREAD_SAFETY_ANALYSIS escape hatch crept in outside
#      common/thread_annotations.h.
#   2. clang-tidy over src/ with the checked-in .clang-tidy profile
#      (bugprone-*, clang-analyzer core/C++, concurrency checks).
#   3. The xqlint schema-analysis gate (all queries x all classes), the
#      --indexes access-path planning pass (index build + cost-based
#      probe selection over the sample database), plus one profiled
#      query run with XBENCH_TRACE_OUT set — json_check validates the
#      emitted report (profile consistency) and trace.
#   4. The ThreadSanitizer smoke suite with runtime lock-rank enforcement
#      on (tools/sanitize_smoke.sh, XBENCH_SANITIZE=thread), which also
#      traces its throughput sweep and schema-checks the trace.
#   5. An ASan+UBSan (-fno-sanitize-recover=all) build of the fuzz
#      harnesses + differential oracle: the checked-in corpus and every
#      regression input replay through all four harnesses, a seeded
#      mutation round runs on top, and the generated-query oracle
#      cross-checks interpreter vs compiled plans vs CLOB per class,
#      cycling index availability (none / Table 3 / Table 3 + text) so
#      index-probing plans are differentially checked sanitized.
#   6. The plan-verifier sweep (xqlint --verify): every canned query of
#      every class compiled under all four access-path modes x
#      parallelism {1,2,4} with CompilationOptions.verify on, checked
#      against the pinned property-lattice golden.
#   7. The repo-convention linter (tools/xbench_lint): raw std::mutex
#      use, DESIGN.md §9 <-> LockRank table drift, unregistered
#      xbench.* metric names, stale [[deprecated]] shims.
#
# Steps whose tool is not installed are skipped with a notice so the gate
# degrades on minimal images; set XBENCH_STATIC_GATE_STRICT=1 to turn a
# skip into a failure (CI images with the full toolchain should).
#
# Usage: tools/static_gate.sh [build-dir-prefix]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
PREFIX="${1:-$ROOT/build-gate}"
STRICT="${XBENCH_STATIC_GATE_STRICT:-0}"

skip() {
  if [ "$STRICT" = "1" ]; then
    echo "static gate: MISSING $1 (strict mode)" >&2
    exit 1
  fi
  echo "static gate: skipping $2 ($1 not installed)"
}

# --- 1. Clang thread-safety build -------------------------------------
echo "static gate: [1/7] clang -Wthread-safety build"
if grep -RIn "NO_THREAD_SAFETY_ANALYSIS" "$ROOT/src" \
    | grep -v "common/thread_annotations.h" \
    | grep -v "XBENCH_THREAD_ANNOTATION__"; then
  echo "static gate: NO_THREAD_SAFETY_ANALYSIS used outside" \
       "common/thread_annotations.h" >&2
  exit 1
fi
if command -v clang++ > /dev/null; then
  cmake -B "$PREFIX-tsa" -S "$ROOT" \
        -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_C_COMPILER=clang
  cmake --build "$PREFIX-tsa" -j"$(nproc)" --target xbench
else
  skip clang++ "thread-safety analysis build"
fi

# --- 2. clang-tidy ----------------------------------------------------
echo "static gate: [2/7] clang-tidy"
if command -v clang-tidy > /dev/null; then
  cmake -B "$PREFIX-lint" -S "$ROOT"
  cmake --build "$PREFIX-lint" --target lint
else
  skip clang-tidy "lint target"
fi

# --- 3. xqlint analysis gate + profiled-query artifacts ---------------
echo "static gate: [3/7] xqlint --class all --query all + profiled query"
cmake -B "$PREFIX-host" -S "$ROOT"
cmake --build "$PREFIX-host" -j"$(nproc)" \
      --target xqlint bench_query json_check
"$PREFIX-host/tools/xqlint" --class all --query all
# Index build + cost-based access-path planning over the sample database
# (the golden for this output is checked by ctest; here it just has to
# succeed).
"$PREFIX-host/tools/xqlint" --explain --indexes --class all --query all \
  > /dev/null
XBENCH_REPORT="$PREFIX-host/gate_query_report.json" \
  XBENCH_TRACE_OUT="$PREFIX-host/gate_query_trace.json" \
  "$PREFIX-host/bench/bench_query" --query Q8 --profile > /dev/null
"$PREFIX-host/tools/json_check" --schema report \
  "$PREFIX-host/gate_query_report.json"
"$PREFIX-host/tools/json_check" --schema trace \
  "$PREFIX-host/gate_query_trace.json"

# --- 4. TSAN smoke with lock ranks ------------------------------------
echo "static gate: [4/7] tsan smoke (XBENCH_LOCK_RANKS=ON)"
XBENCH_SANITIZE=thread "$ROOT/tools/sanitize_smoke.sh" "$PREFIX-tsan"

# --- 5. ASan+UBSan fuzz replay + differential oracle -------------------
echo "static gate: [5/7] fuzz corpus replay + differential oracle" \
     "(address;undefined)"
cmake -B "$PREFIX-fuzz" -S "$ROOT" -DXBENCH_SANITIZE="address;undefined" \
      -DXBENCH_LOCK_RANKS=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$PREFIX-fuzz" -j"$(nproc)" \
      --target fuzz_xml_parser fuzz_dtd fuzz_xquery fuzz_json \
      plan_differential_fuzz
XBENCH_FUZZ_ITERS="${XBENCH_FUZZ_ITERS:-500}" "$ROOT/fuzz/run_smoke.sh" \
  "$ROOT/fuzz/corpus" "$ROOT/fuzz/regressions" \
  "$PREFIX-fuzz/fuzz/fuzz_xml_parser" "$PREFIX-fuzz/fuzz/fuzz_dtd" \
  "$PREFIX-fuzz/fuzz/fuzz_xquery" "$PREFIX-fuzz/fuzz/fuzz_json"
for class in tcsd tcmd dcsd dcmd; do
  "$PREFIX-fuzz/tools/plan_differential_fuzz" --class "$class" \
    --iters "${XBENCH_FUZZ_ITERS:-500}" --seed 42
done

# --- 6. Plan-verifier sweep against the pinned golden ------------------
echo "static gate: [6/7] xqlint --verify sweep"
"$PREFIX-host/tools/xqlint" --verify --class all --query all \
  > "$PREFIX-host/gate_verify_sweep.txt"
if ! cmp -s "$ROOT/tools/golden/xqlint_verify.txt" \
    "$PREFIX-host/gate_verify_sweep.txt"; then
  echo "static gate: verifier property-lattice drift vs" \
       "tools/golden/xqlint_verify.txt" >&2
  exit 1
fi

# --- 7. Repo-convention linter -----------------------------------------
echo "static gate: [7/7] xbench_lint"
cmake --build "$PREFIX-host" -j"$(nproc)" --target xbench_lint
"$PREFIX-host/tools/xbench_lint" --repo-root "$ROOT"

echo "static gate: OK"
