#!/usr/bin/env bash
# Time-boxed fuzzing session over the four harnesses. Splits the wall
# budget evenly across the harnesses and keeps running seeded mutation
# rounds (seed advances each round, so a longer box explores more) until
# the budget expires. A crashing input is left in the driver's
# .last_input dump next to the binary — move it into fuzz/regressions/
# so fuzz_smoke replays it forever.
#
# When the build dir has Clang libFuzzer binaries (fuzz_*_libfuzzer),
# they are used instead: coverage-guided fuzzing with -max_total_time,
# followed by -merge=1 to fold any coverage-novel inputs back into the
# checked-in corpus.
#
# Usage: tools/fuzz_run.sh [-t total-seconds] [-b build-dir] [harness...]
#   harness: any of xml_parser dtd xquery json (default: all four)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUDGET=60
BUILD="$ROOT/build"
while getopts "t:b:" opt; do
  case "$opt" in
    t) BUDGET="$OPTARG" ;;
    b) BUILD="$OPTARG" ;;
    *) echo "usage: $0 [-t seconds] [-b build-dir] [harness...]" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))

HARNESSES=("$@")
[ "${#HARNESSES[@]}" -eq 0 ] && HARNESSES=(xml_parser dtd xquery json)

kind_dir() {
  case "$1" in
    xml_parser) echo xml ;;
    *) echo "$1" ;;
  esac
}

PER=$((BUDGET / ${#HARNESSES[@]}))
[ "$PER" -lt 1 ] && PER=1
ITERS_PER_ROUND="${XBENCH_FUZZ_ITERS:-20000}"

for name in "${HARNESSES[@]}"; do
  kind="$(kind_dir "$name")"
  corpus="$ROOT/fuzz/corpus/$kind"
  regressions="$ROOT/fuzz/regressions/$kind"
  libfuzzer="$BUILD/fuzz/fuzz_${name}_libfuzzer"
  standalone="$BUILD/fuzz/fuzz_${name}"
  if [ -x "$libfuzzer" ]; then
    echo "fuzz_run: $name (libFuzzer, ${PER}s)"
    work="$BUILD/fuzz/work_$name"
    mkdir -p "$work"
    "$libfuzzer" -max_total_time="$PER" "$work" "$corpus" "$regressions"
    # Fold coverage-novel inputs back into the checked-in corpus.
    "$libfuzzer" -merge=1 "$corpus" "$work"
  elif [ -x "$standalone" ]; then
    echo "fuzz_run: $name (standalone driver, ${PER}s)"
    deadline=$(($(date +%s) + PER))
    seed=1
    while [ "$(date +%s)" -lt "$deadline" ]; do
      "$standalone" "$corpus" "$regressions" \
        --fuzz "$ITERS_PER_ROUND" --seed "$seed"
      seed=$((seed + 1))
    done
    echo "fuzz_run: $name finished $((seed - 1)) rounds of $ITERS_PER_ROUND"
  else
    echo "fuzz_run: no harness binary for $name under $BUILD/fuzz" >&2
    echo "          (configure with -DXBENCH_FUZZ=ON and build)" >&2
    exit 2
  fi
done

echo "fuzz_run: OK"
