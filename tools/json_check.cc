// Validates that each file named on the command line is non-empty,
// well-formed JSON. Used by the quickstart_obs ctest case to check the
// trace and report files the observability layer emits.

#include <cstdio>
#include <string>

#include "obs/json.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: json_check FILE...\n");
    return 1;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    auto contents = xbench::obs::ReadFile(argv[i]);
    if (!contents.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i],
                   contents.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (contents->empty()) {
      std::fprintf(stderr, "%s: empty file\n", argv[i]);
      ++failures;
      continue;
    }
    xbench::Status valid = xbench::obs::ValidateJson(*contents);
    if (!valid.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i], valid.ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("%s: ok (%zu bytes)\n", argv[i], contents->size());
  }
  return failures == 0 ? 0 : 1;
}
