// Validates that each file named on the command line is non-empty,
// well-formed JSON. With --schema report it additionally checks that the
// file matches the harness driver's run-report structure (see
// Driver::JsonReport), including the per-operator "plan" section emitted
// for compiled-plan executions and the per-query "profile" phase
// breakdown (where it checks that operator self times sum to the
// profiled execution time within 5%); with --schema throughput it checks
// the bench_throughput XBENCH_REPORT document (the multi-client MPL
// sweep, see harness::WriteJson in harness/throughput.cc); with
// --schema trace it checks a Chrome trace-event document written by
// obs::Tracer::ToChromeJson (balanced B/E spans per lane, well-formed
// metadata events). Used by the quickstart_obs, bench_query_report,
// bench_throughput_report and trace-validation ctest cases.
//
// The underlying parser (obs::ParseJson) is fuzzed continuously via
// fuzz/fuzz_json.cc; malformed input — unterminated strings, non-finite
// number literals like 1e999, pathological nesting — comes back as a
// Status, so this tool reports it rather than crashing on it.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "obs/json.h"

namespace {

using xbench::Status;
using xbench::obs::JsonValue;

Status SchemaError(const std::string& what) {
  return Status::Corruption("report schema: " + what);
}

Status RequireString(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_string()) {
    return SchemaError(std::string("missing string \"") + key + "\"");
  }
  return Status::Ok();
}

Status RequireNumber(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_number()) {
    return SchemaError(std::string("missing number \"") + key + "\"");
  }
  return Status::Ok();
}

xbench::Result<bool> RequireBool(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_bool()) {
    return SchemaError(std::string("missing bool \"") + key + "\"");
  }
  return value->boolean;
}

/// Per-operator counters attached to a compiled-plan query entry. Sums
/// the operators' self times into `self_millis_sum` for the profile
/// consistency check and reports the plan's intra-query parallelism
/// bound through `max_parallelism` (1 when the key is absent).
Status CheckPlan(const JsonValue& plan, size_t* operators_seen,
                 double* self_millis_sum, double* max_parallelism) {
  if (!plan.is_object()) return SchemaError("\"plan\" is not an object");
  XBENCH_RETURN_IF_ERROR(RequireBool(plan, "compiled").status());
  XBENCH_RETURN_IF_ERROR(RequireBool(plan, "cache_hit").status());
  // The access-path decision summary (e.g. "IndexScan(item/@id = …)",
  // "guided-walk", "full-scan") is part of every compiled plan entry.
  XBENCH_RETURN_IF_ERROR(RequireString(plan, "access_path"));
  *max_parallelism = 1;
  if (const JsonValue* parallelism = plan.Find("max_parallelism")) {
    if (!parallelism->is_number()) {
      return SchemaError("\"max_parallelism\" is not a number");
    }
    *max_parallelism = parallelism->number;
    if (parallelism->number > 1) {
      // Parallel plans always report their morsel totals.
      for (const char* key : {"morsels", "parallel_busy_millis",
                              "parallel_modeled_millis",
                              "modeled_total_millis"}) {
        XBENCH_RETURN_IF_ERROR(RequireNumber(plan, key));
      }
    }
  }
  const JsonValue* operators = plan.Find("operators");
  if (operators == nullptr || !operators->is_array()) {
    return SchemaError("\"plan\" lacks an \"operators\" array");
  }
  if (operators->items.empty()) {
    return SchemaError("\"operators\" is empty — a compiled plan has at "
                       "least a root operator");
  }
  for (const JsonValue& op : operators->items) {
    if (!op.is_object()) return SchemaError("operator entry is not an object");
    XBENCH_RETURN_IF_ERROR(RequireString(op, "op"));
    for (const char* key :
         {"rows_out", "invocations", "millis", "depth", "self_millis"}) {
      XBENCH_RETURN_IF_ERROR(RequireNumber(op, key));
    }
    // Index-probe operators carry the planner's cardinality estimate so
    // reports can show estimated vs actual rows; absent elsewhere.
    if (const JsonValue* estimate = op.Find("estimated_rows")) {
      if (!estimate->is_number() || estimate->number < 0) {
        return SchemaError("\"estimated_rows\" is not a non-negative number");
      }
    }
    *self_millis_sum += op.Find("self_millis")->number;
  }
  *operators_seen += operators->items.size();
  return Status::Ok();
}

/// The per-phase execution profile emitted under --profile. Cross-checks
/// the profiled execution time against the plan's per-operator self
/// times: the self times partition the operator tree's inclusive root
/// time, so their sum must equal exec_millis within 5% (plus a small
/// absolute floor for sub-millisecond runs where timer granularity
/// dominates). Plans compiled with max_parallelism > 1 get a much wider
/// tolerance: morsel regions run work on pool lanes whose wall time
/// overlaps the caller's, so self times no longer partition the root's
/// inclusive time (see the OperatorStats invariant note in exec.h).
Status CheckProfile(const JsonValue& profile, double plan_self_millis,
                    bool has_plan, double plan_max_parallelism,
                    size_t* profiles_seen) {
  if (!profile.is_object()) return SchemaError("\"profile\" is not an object");
  for (const char* key :
       {"parse_millis", "analyze_millis", "plan_millis", "engine_millis",
        "exec_millis", "serialize_millis"}) {
    XBENCH_RETURN_IF_ERROR(RequireNumber(profile, key));
  }
  XBENCH_RETURN_IF_ERROR(RequireBool(profile, "compile_cache_hit").status());
  if (has_plan) {
    const double exec = profile.Find("exec_millis")->number;
    const bool parallel = plan_max_parallelism > 1;
    const double tolerance =
        parallel ? std::max(0.50 * exec, 2.0) : std::max(0.05 * exec, 0.5);
    if (std::fabs(plan_self_millis - exec) > tolerance) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "operator self times sum to %.3fms but profile "
                    "exec_millis is %.3fms (tolerance %.3fms)",
                    plan_self_millis, exec, tolerance);
      return SchemaError(buf);
    }
  }
  ++*profiles_seen;
  return Status::Ok();
}

Status CheckQuery(const JsonValue& query, size_t* operators_seen,
                  size_t* profiles_seen) {
  if (!query.is_object()) return SchemaError("query entry is not an object");
  XBENCH_RETURN_IF_ERROR(RequireString(query, "query"));
  XBENCH_ASSIGN_OR_RETURN(bool supported, RequireBool(query, "supported"));
  if (!supported) return RequireString(query, "error");
  XBENCH_RETURN_IF_ERROR(RequireNumber(query, "cpu_millis"));
  XBENCH_RETURN_IF_ERROR(RequireNumber(query, "io_millis"));
  XBENCH_RETURN_IF_ERROR(RequireNumber(query, "answer_lines"));
  XBENCH_RETURN_IF_ERROR(RequireString(query, "answer_hash"));
  const JsonValue* plan = query.Find("plan");
  double self_millis_sum = 0;
  double max_parallelism = 1;
  if (plan != nullptr) {
    XBENCH_RETURN_IF_ERROR(CheckPlan(*plan, operators_seen, &self_millis_sum,
                                     &max_parallelism));
  }
  if (const JsonValue* profile = query.Find("profile")) {
    XBENCH_RETURN_IF_ERROR(CheckProfile(*profile, self_millis_sum,
                                        plan != nullptr, max_parallelism,
                                        profiles_seen));
  }
  return Status::Ok();
}

Status CheckCell(const JsonValue& cell, size_t* queries_seen,
                 size_t* operators_seen, size_t* profiles_seen) {
  if (!cell.is_object()) return SchemaError("cell entry is not an object");
  for (const char* key : {"engine", "class", "scale", "instance"}) {
    XBENCH_RETURN_IF_ERROR(RequireString(cell, key));
  }
  const JsonValue* load = cell.Find("load");
  if (load == nullptr || !load->is_object()) {
    return SchemaError("cell lacks a \"load\" object");
  }
  XBENCH_ASSIGN_OR_RETURN(bool load_supported, RequireBool(*load, "supported"));
  if (!load_supported) return RequireString(*load, "error");
  XBENCH_RETURN_IF_ERROR(RequireNumber(*load, "cpu_millis"));
  XBENCH_RETURN_IF_ERROR(RequireNumber(*load, "io_millis"));
  const JsonValue* queries = cell.Find("queries");
  if (queries == nullptr || !queries->is_array()) {
    return SchemaError("loaded cell lacks a \"queries\" array");
  }
  for (const JsonValue& query : queries->items) {
    XBENCH_RETURN_IF_ERROR(CheckQuery(query, operators_seen, profiles_seen));
  }
  *queries_seen += queries->items.size();
  return Status::Ok();
}

/// Validates one Driver::JsonReport document; on success reports how many
/// cells/queries/plan operators it covered so the ctest log shows the
/// check saw real content.
Status CheckReport(const JsonValue& root, std::string* summary) {
  if (!root.is_object()) return SchemaError("root is not an object");
  const JsonValue* benchmark = root.Find("benchmark");
  if (benchmark == nullptr || !benchmark->is_string() ||
      benchmark->string != "xbench") {
    return SchemaError("\"benchmark\" is not the string \"xbench\"");
  }
  XBENCH_RETURN_IF_ERROR(RequireNumber(root, "seed"));
  const JsonValue* scales = root.Find("scales");
  if (scales == nullptr || !scales->is_array() || scales->items.empty()) {
    return SchemaError("missing non-empty \"scales\" array");
  }
  for (const JsonValue& scale : scales->items) {
    if (!scale.is_object()) return SchemaError("scale entry is not an object");
    XBENCH_RETURN_IF_ERROR(RequireString(scale, "name"));
    XBENCH_RETURN_IF_ERROR(RequireNumber(scale, "target_bytes"));
  }
  const JsonValue* cells = root.Find("cells");
  if (cells == nullptr || !cells->is_array() || cells->items.empty()) {
    return SchemaError("missing non-empty \"cells\" array");
  }
  size_t queries_seen = 0;
  size_t operators_seen = 0;
  size_t profiles_seen = 0;
  for (const JsonValue& cell : cells->items) {
    XBENCH_RETURN_IF_ERROR(
        CheckCell(cell, &queries_seen, &operators_seen, &profiles_seen));
  }
  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return SchemaError("missing \"metrics\" object");
  }
  if (operators_seen == 0) {
    return SchemaError("no compiled-plan operator stats anywhere in the "
                       "report — the native engine should emit them");
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%zu cells, %zu queries, %zu plan operators, %zu profiles",
                cells->items.size(), queries_seen, operators_seen,
                profiles_seen);
  *summary = buf;
  return Status::Ok();
}

/// Validates one bench_throughput XBENCH_REPORT document: the serial
/// baseline answers plus one result row per multiprogramming level, with
/// the metrics snapshot alongside. Mirrors harness::WriteJson plus the
/// wrapper object bench_throughput.cc emits around it.
Status CheckThroughputReport(const JsonValue& root, std::string* summary) {
  if (!root.is_object()) return SchemaError("root is not an object");
  const JsonValue* benchmark = root.Find("benchmark");
  if (benchmark == nullptr || !benchmark->is_string() ||
      benchmark->string != "xbench_throughput") {
    return SchemaError(
        "\"benchmark\" is not the string \"xbench_throughput\"");
  }
  const JsonValue* throughput = root.Find("throughput");
  if (throughput == nullptr || !throughput->is_object()) {
    return SchemaError("missing \"throughput\" object");
  }
  for (const char* key : {"engine", "class", "scale"}) {
    XBENCH_RETURN_IF_ERROR(RequireString(*throughput, key));
  }
  XBENCH_RETURN_IF_ERROR(
      RequireBool(*throughput, "answers_match_serial").status());
  const JsonValue* baseline = throughput->Find("baseline");
  if (baseline == nullptr || !baseline->is_array() ||
      baseline->items.empty()) {
    return SchemaError("missing non-empty \"baseline\" array — the serial "
                       "pass always records its answers");
  }
  for (const JsonValue& answer : baseline->items) {
    if (!answer.is_object()) {
      return SchemaError("baseline entry is not an object");
    }
    XBENCH_RETURN_IF_ERROR(RequireString(answer, "query"));
    XBENCH_RETURN_IF_ERROR(RequireNumber(answer, "answer_hash"));
    XBENCH_RETURN_IF_ERROR(RequireNumber(answer, "answer_lines"));
  }
  XBENCH_RETURN_IF_ERROR(RequireNumber(*throughput, "slo_p99_millis"));
  XBENCH_RETURN_IF_ERROR(RequireBool(*throughput, "slo_satisfied").status());
  const JsonValue* mpls = throughput->Find("mpls");
  if (mpls == nullptr || !mpls->is_array() || mpls->items.empty()) {
    return SchemaError("missing non-empty \"mpls\" array");
  }
  for (const JsonValue& row : mpls->items) {
    if (!row.is_object()) return SchemaError("mpl entry is not an object");
    for (const char* key :
         {"mpl", "intra", "ops", "failures", "hash_mismatches",
          "makespan_millis", "qps", "mean_millis", "p50_millis", "p90_millis",
          "p99_millis", "p999_millis"}) {
      XBENCH_RETURN_IF_ERROR(RequireNumber(row, key));
    }
    XBENCH_RETURN_IF_ERROR(RequireBool(row, "slo_ok").status());
  }
  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return SchemaError("missing \"metrics\" object");
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%zu baseline queries, %zu MPL rows",
                baseline->items.size(), mpls->items.size());
  *summary = buf;
  return Status::Ok();
}

/// Validates one Chrome trace-event document written by
/// obs::Tracer::ToChromeJson: a non-empty "traceEvents" array whose
/// entries are B (span begin, named), E (span end) or M (metadata)
/// events, with B/E balanced per (pid, tid) lane — every span that opens
/// closes, and no lane ends more spans than it began.
Status CheckTrace(const JsonValue& root, std::string* summary) {
  if (!root.is_object()) return SchemaError("root is not an object");
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array() || events->items.empty()) {
    return SchemaError("missing non-empty \"traceEvents\" array");
  }
  std::map<std::pair<double, double>, long> depth_by_lane;
  size_t spans = 0;
  size_t metadata = 0;
  for (const JsonValue& event : events->items) {
    if (!event.is_object()) return SchemaError("event is not an object");
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || !ph->is_string()) {
      return SchemaError("event lacks a string \"ph\"");
    }
    XBENCH_RETURN_IF_ERROR(RequireNumber(event, "pid"));
    XBENCH_RETURN_IF_ERROR(RequireNumber(event, "tid"));
    const auto lane = std::make_pair(event.Find("pid")->number,
                                     event.Find("tid")->number);
    if (ph->string == "M") {
      XBENCH_RETURN_IF_ERROR(RequireString(event, "name"));
      const JsonValue* args = event.Find("args");
      if (args == nullptr || !args->is_object()) {
        return SchemaError("metadata event lacks an \"args\" object");
      }
      XBENCH_RETURN_IF_ERROR(RequireString(*args, "name"));
      ++metadata;
    } else if (ph->string == "B") {
      XBENCH_RETURN_IF_ERROR(RequireString(event, "name"));
      XBENCH_RETURN_IF_ERROR(RequireString(event, "cat"));
      XBENCH_RETURN_IF_ERROR(RequireNumber(event, "ts"));
      ++depth_by_lane[lane];
      ++spans;
    } else if (ph->string == "E") {
      XBENCH_RETURN_IF_ERROR(RequireNumber(event, "ts"));
      if (--depth_by_lane[lane] < 0) {
        return SchemaError("\"E\" event without a matching \"B\" on its "
                           "lane");
      }
    } else {
      return SchemaError("unknown event phase \"" + ph->string + "\"");
    }
  }
  for (const auto& [lane, depth] : depth_by_lane) {
    if (depth != 0) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "lane tid=%g has %ld unclosed span%s", lane.second, depth,
                    depth == 1 ? "" : "s");
      return SchemaError(buf);
    }
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%zu spans, %zu lanes, %zu metadata events",
                spans, depth_by_lane.size(), metadata);
  *summary = buf;
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  bool schema_report = false;
  bool schema_throughput = false;
  bool schema_trace = false;
  int first_file = 1;
  if (argc >= 3 && std::strcmp(argv[1], "--schema") == 0) {
    if (std::strcmp(argv[2], "report") == 0) {
      schema_report = true;
    } else if (std::strcmp(argv[2], "throughput") == 0) {
      schema_throughput = true;
    } else if (std::strcmp(argv[2], "trace") == 0) {
      schema_trace = true;
    } else {
      std::fprintf(stderr, "json_check: unknown schema '%s'\n", argv[2]);
      return 1;
    }
    first_file = 3;
  }
  if (first_file >= argc) {
    std::fprintf(
        stderr,
        "usage: json_check [--schema report|throughput|trace] FILE...\n");
    return 1;
  }
  int failures = 0;
  for (int i = first_file; i < argc; ++i) {
    auto contents = xbench::obs::ReadFile(argv[i]);
    if (!contents.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i],
                   contents.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (contents->empty()) {
      std::fprintf(stderr, "%s: empty file\n", argv[i]);
      ++failures;
      continue;
    }
    auto parsed = xbench::obs::ParseJson(*contents);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i],
                   parsed.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::string summary;
    if (schema_report || schema_throughput || schema_trace) {
      xbench::Status valid =
          schema_report
              ? CheckReport(*parsed, &summary)
              : (schema_throughput ? CheckThroughputReport(*parsed, &summary)
                                   : CheckTrace(*parsed, &summary));
      if (!valid.ok()) {
        std::fprintf(stderr, "%s: %s\n", argv[i], valid.ToString().c_str());
        ++failures;
        continue;
      }
    }
    if (summary.empty()) {
      std::printf("%s: ok (%zu bytes)\n", argv[i], contents->size());
    } else {
      std::printf("%s: ok (%zu bytes; %s)\n", argv[i], contents->size(),
                  summary.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}
