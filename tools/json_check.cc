// Validates that each file named on the command line is non-empty,
// well-formed JSON. With --schema report it additionally checks that the
// file matches the harness driver's run-report structure (see
// Driver::JsonReport), including the per-operator "plan" section emitted
// for compiled-plan executions; with --schema throughput it checks the
// bench_throughput XBENCH_REPORT document (the multi-client MPL sweep,
// see harness::WriteJson in harness/throughput.cc). Used by the
// quickstart_obs, bench_query_report and bench_throughput_report ctest
// cases.

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/json.h"

namespace {

using xbench::Status;
using xbench::obs::JsonValue;

Status SchemaError(const std::string& what) {
  return Status::Corruption("report schema: " + what);
}

Status RequireString(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_string()) {
    return SchemaError(std::string("missing string \"") + key + "\"");
  }
  return Status::Ok();
}

Status RequireNumber(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_number()) {
    return SchemaError(std::string("missing number \"") + key + "\"");
  }
  return Status::Ok();
}

xbench::Result<bool> RequireBool(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_bool()) {
    return SchemaError(std::string("missing bool \"") + key + "\"");
  }
  return value->boolean;
}

/// Per-operator counters attached to a compiled-plan query entry.
Status CheckPlan(const JsonValue& plan, size_t* operators_seen) {
  if (!plan.is_object()) return SchemaError("\"plan\" is not an object");
  XBENCH_RETURN_IF_ERROR(RequireBool(plan, "compiled").status());
  XBENCH_RETURN_IF_ERROR(RequireBool(plan, "cache_hit").status());
  const JsonValue* operators = plan.Find("operators");
  if (operators == nullptr || !operators->is_array()) {
    return SchemaError("\"plan\" lacks an \"operators\" array");
  }
  if (operators->items.empty()) {
    return SchemaError("\"operators\" is empty — a compiled plan has at "
                       "least a root operator");
  }
  for (const JsonValue& op : operators->items) {
    if (!op.is_object()) return SchemaError("operator entry is not an object");
    XBENCH_RETURN_IF_ERROR(RequireString(op, "op"));
    XBENCH_RETURN_IF_ERROR(RequireNumber(op, "rows_out"));
    XBENCH_RETURN_IF_ERROR(RequireNumber(op, "invocations"));
    XBENCH_RETURN_IF_ERROR(RequireNumber(op, "millis"));
  }
  *operators_seen += operators->items.size();
  return Status::Ok();
}

Status CheckQuery(const JsonValue& query, size_t* operators_seen) {
  if (!query.is_object()) return SchemaError("query entry is not an object");
  XBENCH_RETURN_IF_ERROR(RequireString(query, "query"));
  XBENCH_ASSIGN_OR_RETURN(bool supported, RequireBool(query, "supported"));
  if (!supported) return RequireString(query, "error");
  XBENCH_RETURN_IF_ERROR(RequireNumber(query, "cpu_millis"));
  XBENCH_RETURN_IF_ERROR(RequireNumber(query, "io_millis"));
  XBENCH_RETURN_IF_ERROR(RequireNumber(query, "answer_lines"));
  XBENCH_RETURN_IF_ERROR(RequireString(query, "answer_hash"));
  if (const JsonValue* plan = query.Find("plan")) {
    XBENCH_RETURN_IF_ERROR(CheckPlan(*plan, operators_seen));
  }
  return Status::Ok();
}

Status CheckCell(const JsonValue& cell, size_t* queries_seen,
                 size_t* operators_seen) {
  if (!cell.is_object()) return SchemaError("cell entry is not an object");
  for (const char* key : {"engine", "class", "scale", "instance"}) {
    XBENCH_RETURN_IF_ERROR(RequireString(cell, key));
  }
  const JsonValue* load = cell.Find("load");
  if (load == nullptr || !load->is_object()) {
    return SchemaError("cell lacks a \"load\" object");
  }
  XBENCH_ASSIGN_OR_RETURN(bool load_supported, RequireBool(*load, "supported"));
  if (!load_supported) return RequireString(*load, "error");
  XBENCH_RETURN_IF_ERROR(RequireNumber(*load, "cpu_millis"));
  XBENCH_RETURN_IF_ERROR(RequireNumber(*load, "io_millis"));
  const JsonValue* queries = cell.Find("queries");
  if (queries == nullptr || !queries->is_array()) {
    return SchemaError("loaded cell lacks a \"queries\" array");
  }
  for (const JsonValue& query : queries->items) {
    XBENCH_RETURN_IF_ERROR(CheckQuery(query, operators_seen));
  }
  *queries_seen += queries->items.size();
  return Status::Ok();
}

/// Validates one Driver::JsonReport document; on success reports how many
/// cells/queries/plan operators it covered so the ctest log shows the
/// check saw real content.
Status CheckReport(const JsonValue& root, std::string* summary) {
  if (!root.is_object()) return SchemaError("root is not an object");
  const JsonValue* benchmark = root.Find("benchmark");
  if (benchmark == nullptr || !benchmark->is_string() ||
      benchmark->string != "xbench") {
    return SchemaError("\"benchmark\" is not the string \"xbench\"");
  }
  XBENCH_RETURN_IF_ERROR(RequireNumber(root, "seed"));
  const JsonValue* scales = root.Find("scales");
  if (scales == nullptr || !scales->is_array() || scales->items.empty()) {
    return SchemaError("missing non-empty \"scales\" array");
  }
  for (const JsonValue& scale : scales->items) {
    if (!scale.is_object()) return SchemaError("scale entry is not an object");
    XBENCH_RETURN_IF_ERROR(RequireString(scale, "name"));
    XBENCH_RETURN_IF_ERROR(RequireNumber(scale, "target_bytes"));
  }
  const JsonValue* cells = root.Find("cells");
  if (cells == nullptr || !cells->is_array() || cells->items.empty()) {
    return SchemaError("missing non-empty \"cells\" array");
  }
  size_t queries_seen = 0;
  size_t operators_seen = 0;
  for (const JsonValue& cell : cells->items) {
    XBENCH_RETURN_IF_ERROR(CheckCell(cell, &queries_seen, &operators_seen));
  }
  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return SchemaError("missing \"metrics\" object");
  }
  if (operators_seen == 0) {
    return SchemaError("no compiled-plan operator stats anywhere in the "
                       "report — the native engine should emit them");
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%zu cells, %zu queries, %zu plan operators",
                cells->items.size(), queries_seen, operators_seen);
  *summary = buf;
  return Status::Ok();
}

/// Validates one bench_throughput XBENCH_REPORT document: the serial
/// baseline answers plus one result row per multiprogramming level, with
/// the metrics snapshot alongside. Mirrors harness::WriteJson plus the
/// wrapper object bench_throughput.cc emits around it.
Status CheckThroughputReport(const JsonValue& root, std::string* summary) {
  if (!root.is_object()) return SchemaError("root is not an object");
  const JsonValue* benchmark = root.Find("benchmark");
  if (benchmark == nullptr || !benchmark->is_string() ||
      benchmark->string != "xbench_throughput") {
    return SchemaError(
        "\"benchmark\" is not the string \"xbench_throughput\"");
  }
  const JsonValue* throughput = root.Find("throughput");
  if (throughput == nullptr || !throughput->is_object()) {
    return SchemaError("missing \"throughput\" object");
  }
  for (const char* key : {"engine", "class", "scale"}) {
    XBENCH_RETURN_IF_ERROR(RequireString(*throughput, key));
  }
  XBENCH_RETURN_IF_ERROR(
      RequireBool(*throughput, "answers_match_serial").status());
  const JsonValue* baseline = throughput->Find("baseline");
  if (baseline == nullptr || !baseline->is_array() ||
      baseline->items.empty()) {
    return SchemaError("missing non-empty \"baseline\" array — the serial "
                       "pass always records its answers");
  }
  for (const JsonValue& answer : baseline->items) {
    if (!answer.is_object()) {
      return SchemaError("baseline entry is not an object");
    }
    XBENCH_RETURN_IF_ERROR(RequireString(answer, "query"));
    XBENCH_RETURN_IF_ERROR(RequireNumber(answer, "answer_hash"));
    XBENCH_RETURN_IF_ERROR(RequireNumber(answer, "answer_lines"));
  }
  const JsonValue* mpls = throughput->Find("mpls");
  if (mpls == nullptr || !mpls->is_array() || mpls->items.empty()) {
    return SchemaError("missing non-empty \"mpls\" array");
  }
  for (const JsonValue& row : mpls->items) {
    if (!row.is_object()) return SchemaError("mpl entry is not an object");
    for (const char* key : {"mpl", "ops", "failures", "hash_mismatches",
                            "makespan_millis", "qps", "mean_millis",
                            "p50_millis", "p99_millis"}) {
      XBENCH_RETURN_IF_ERROR(RequireNumber(row, key));
    }
  }
  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return SchemaError("missing \"metrics\" object");
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%zu baseline queries, %zu MPL rows",
                baseline->items.size(), mpls->items.size());
  *summary = buf;
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  bool schema_report = false;
  bool schema_throughput = false;
  int first_file = 1;
  if (argc >= 3 && std::strcmp(argv[1], "--schema") == 0) {
    if (std::strcmp(argv[2], "report") == 0) {
      schema_report = true;
    } else if (std::strcmp(argv[2], "throughput") == 0) {
      schema_throughput = true;
    } else {
      std::fprintf(stderr, "json_check: unknown schema '%s'\n", argv[2]);
      return 1;
    }
    first_file = 3;
  }
  if (first_file >= argc) {
    std::fprintf(stderr,
                 "usage: json_check [--schema report|throughput] FILE...\n");
    return 1;
  }
  int failures = 0;
  for (int i = first_file; i < argc; ++i) {
    auto contents = xbench::obs::ReadFile(argv[i]);
    if (!contents.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i],
                   contents.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (contents->empty()) {
      std::fprintf(stderr, "%s: empty file\n", argv[i]);
      ++failures;
      continue;
    }
    auto parsed = xbench::obs::ParseJson(*contents);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i],
                   parsed.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::string summary;
    if (schema_report || schema_throughput) {
      xbench::Status valid = schema_report
                                 ? CheckReport(*parsed, &summary)
                                 : CheckThroughputReport(*parsed, &summary);
      if (!valid.ok()) {
        std::fprintf(stderr, "%s: %s\n", argv[i], valid.ToString().c_str());
        ++failures;
        continue;
      }
    }
    if (summary.empty()) {
      std::printf("%s: ok (%zu bytes)\n", argv[i], contents->size());
    } else {
      std::printf("%s: ok (%zu bytes; %s)\n", argv[i], contents->size(),
                  summary.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}
