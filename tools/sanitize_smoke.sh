#!/usr/bin/env bash
# AddressSanitizer smoke job: builds the tree in a separate build dir with
# -DXBENCH_SANITIZE=address and runs the fast test binaries plus the xqlint
# gate under ASan. Intended for CI / pre-release, not the default tier-1
# loop (a full sanitized rebuild is too slow there).
#
# Usage: tools/sanitize_smoke.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-asan}"
SAN="${XBENCH_SANITIZE:-address}"

cmake -B "$BUILD" -S "$ROOT" -DXBENCH_SANITIZE="$SAN" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j"$(nproc)" \
      --target core_tests xquery_tests plan_tests system_tests xqlint

"$BUILD/tests/core_tests"
"$BUILD/tests/xquery_tests"
# Exec-layer coverage: the pull-based physical operators, the differential
# plan-vs-interpreter sweep and the plan cache all run fully sanitized.
"$BUILD/tests/plan_tests"
"$BUILD/tests/system_tests" --gtest_filter='*Analy*:InferredDtd*'
"$BUILD/tools/xqlint" --class all --query all
"$BUILD/tools/xqlint" --explain --class all --query all > /dev/null

echo "sanitize smoke ($SAN): OK"
