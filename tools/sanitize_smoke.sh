#!/usr/bin/env bash
# Sanitizer smoke job: builds the tree in a separate build dir with
# -DXBENCH_SANITIZE=$XBENCH_SANITIZE (default address) and runs the fast
# test binaries plus the xqlint gate under the sanitizer. Intended for
# CI / pre-release, not the default tier-1 loop (a full sanitized rebuild
# is too slow there).
#
# XBENCH_SANITIZE=thread runs the tsan_smoke variant instead: the
# concurrency suite (sharded pool latches, per-thread I/O attribution,
# concurrent-vs-serial differential answers, the MPL throughput driver)
# plus a bench_throughput sweep, all under ThreadSanitizer.
#
# Usage: tools/sanitize_smoke.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SAN="${XBENCH_SANITIZE:-address}"
BUILD="${1:-$ROOT/build-$SAN}"

# Sanitized trees also run with lock-rank enforcement on by default, so
# every acquisition in the smoke suites is checked against the DESIGN.md
# §9 order (an out-of-rank acquisition aborts the run).
cmake -B "$BUILD" -S "$ROOT" -DXBENCH_SANITIZE="$SAN" \
      -DXBENCH_LOCK_RANKS=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo

if [ "$SAN" = "thread" ]; then
  # tsan_smoke: everything that takes locks or spawns threads, including
  # the lock-rank enforcer's own death tests.
  cmake --build "$BUILD" -j"$(nproc)" \
        --target concurrency_tests lock_rank_tests bench_throughput
  "$BUILD/tests/concurrency_tests"
  "$BUILD/tests/lock_rank_tests"
  "$BUILD/bench/bench_throughput" --mpl 1,4,8 --ops 4
  echo "sanitize smoke ($SAN): OK"
  exit 0
fi

cmake --build "$BUILD" -j"$(nproc)" \
      --target core_tests xquery_tests plan_tests system_tests xqlint

"$BUILD/tests/core_tests"
"$BUILD/tests/xquery_tests"
# Exec-layer coverage: the pull-based physical operators, the differential
# plan-vs-interpreter sweep and the plan cache all run fully sanitized.
"$BUILD/tests/plan_tests"
"$BUILD/tests/system_tests" --gtest_filter='*Analy*:InferredDtd*'
"$BUILD/tools/xqlint" --class all --query all
"$BUILD/tools/xqlint" --explain --class all --query all > /dev/null

echo "sanitize smoke ($SAN): OK"
