#!/usr/bin/env bash
# Sanitizer smoke job: builds the tree in a separate build dir with
# -DXBENCH_SANITIZE=$XBENCH_SANITIZE (default address) and runs the fast
# test binaries plus the xqlint gate under the sanitizer. Intended for
# CI / pre-release, not the default tier-1 loop (a full sanitized rebuild
# is too slow there).
#
# Supported modes: address (default), undefined (UBSan with
# -fno-sanitize-recover=all, so any UB aborts), "address;undefined"
# (combined), thread. The address/undefined modes also replay the fuzz
# corpus + regression inputs through all four harnesses and run the
# differential-fuzz oracle sanitized.
#
# XBENCH_SANITIZE=thread runs the tsan_smoke variant instead: the
# concurrency suite (sharded pool latches, per-thread I/O attribution,
# concurrent-vs-serial differential answers, the MPL throughput driver)
# plus a bench_throughput sweep, all under ThreadSanitizer.
#
# Usage: tools/sanitize_smoke.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SAN="${XBENCH_SANITIZE:-address}"
BUILD="${1:-$ROOT/build-$SAN}"

# Sanitized trees also run with lock-rank enforcement on by default, so
# every acquisition in the smoke suites is checked against the DESIGN.md
# §9 order (an out-of-rank acquisition aborts the run).
cmake -B "$BUILD" -S "$ROOT" -DXBENCH_SANITIZE="$SAN" \
      -DXBENCH_LOCK_RANKS=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo

if [ "$SAN" = "thread" ]; then
  # tsan_smoke: everything that takes locks or spawns threads, including
  # the lock-rank enforcer's own death tests and the secondary-index
  # suite (index DDL + probing statements racing inserts, deletes and
  # cold restarts inside concurrency_tests). The throughput sweep runs
  # with tracing on and the SLO gate armed (generously), so the
  # multi-lane tracer paths and the histogram-percentile gate are both
  # exercised under TSAN, and json_check validates the emitted trace.
  cmake --build "$BUILD" -j"$(nproc)" \
        --target concurrency_tests lock_rank_tests bench_throughput \
        json_check
  "$BUILD/tests/concurrency_tests"
  "$BUILD/tests/lock_rank_tests"
  # --intra crosses the MPL sweep with morsel-driven intra-query
  # parallelism: concurrent sessions race each other AND the shared
  # worker pool's lanes, which is exactly the interleaving TSAN is here
  # to check.
  XBENCH_TRACE_OUT="$BUILD/tsan_throughput_trace.json" \
    "$BUILD/bench/bench_throughput" --mpl 1,4,8 --intra 1,4 --ops 4 \
    --slo-p99-millis 600000
  "$BUILD/tools/json_check" --schema trace \
    "$BUILD/tsan_throughput_trace.json"
  echo "sanitize smoke ($SAN): OK"
  exit 0
fi

cmake --build "$BUILD" -j"$(nproc)" \
      --target core_tests xquery_tests plan_tests system_tests xqlint \
      bench_query json_check \
      fuzz_xml_parser fuzz_dtd fuzz_xquery fuzz_json plan_differential_fuzz

"$BUILD/tests/core_tests"
"$BUILD/tests/xquery_tests"
# Exec-layer coverage: the pull-based physical operators, the differential
# plan-vs-interpreter sweep and the plan cache all run fully sanitized.
"$BUILD/tests/plan_tests"
"$BUILD/tests/system_tests" --gtest_filter='*Analy*:InferredDtd*'
"$BUILD/tools/xqlint" --class all --query all
"$BUILD/tools/xqlint" --explain --class all --query all > /dev/null
# --indexes loads the sample database, builds the Table 3 value indexes
# plus the text index, and routes every eligible plan through the
# cost-based access-path selector — index build and probe planning both
# run sanitized.
"$BUILD/tools/xqlint" --explain --indexes --class all --query all > /dev/null
# One profiled query end to end under ASAN: per-operator timing, the
# phase profile, and the trace exporter all run sanitized; json_check
# then validates both emitted artifacts (report schema includes the
# self-time-vs-exec-time 5% consistency check).
XBENCH_REPORT="$BUILD/asan_query_report.json" \
  XBENCH_TRACE_OUT="$BUILD/asan_query_trace.json" \
  "$BUILD/bench/bench_query" --query Q8 --profile > /dev/null
"$BUILD/tools/json_check" --schema report "$BUILD/asan_query_report.json"
"$BUILD/tools/json_check" --schema trace "$BUILD/asan_query_trace.json"

# Fuzz corpus + regression inputs replayed through all four harnesses
# under the sanitizer, then a short deterministic mutation loop in each
# (fixed seed — two runs execute byte-identical inputs).
XBENCH_FUZZ_ITERS="${XBENCH_FUZZ_ITERS:-200}" "$ROOT/fuzz/run_smoke.sh" \
  "$ROOT/fuzz/corpus" "$ROOT/fuzz/regressions" \
  "$BUILD/fuzz/fuzz_xml_parser" "$BUILD/fuzz/fuzz_dtd" \
  "$BUILD/fuzz/fuzz_xquery" "$BUILD/fuzz/fuzz_json"

# Differential oracle sanitized: generated queries through interpreter,
# unguided plan, guided plan and the CLOB engine.
for class in tcsd tcmd dcsd dcmd; do
  "$BUILD/tools/plan_differential_fuzz" --class "$class" \
    --iters "${XBENCH_FUZZ_ITERS:-200}" --seed 42
done

echo "sanitize smoke ($SAN): OK"
