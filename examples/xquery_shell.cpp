// Interactive XQuery shell over a generated XBench database: pick a
// class and size on the command line, then type XQuery against $input
// (the collection roots). Demonstrates the library as a standalone tool:
//
//   ./xquery_shell tcmd 256        # TC/MD corpus, ~256 KiB
//   xquery> for $a in $input where $a/prolog/author/name = "Alan Turing"
//           return data($a/prolog/title)
//
// Commands: \schema (inferred schema tree), \dtd, \docs (document list),
// \stats (engine counters), \q (quit). Reads one query per line.
#include <cstdio>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "datagen/generator.h"
#include "engines/native_engine.h"
#include "workload/classes.h"
#include "workload/runner.h"
#include "xml/schema_summary.h"

namespace {

xbench::datagen::DbClass ParseClass(const std::string& name) {
  using xbench::datagen::DbClass;
  const std::string lower = xbench::ToLower(name);
  if (lower == "tcsd") return DbClass::kTcSd;
  if (lower == "tcmd") return DbClass::kTcMd;
  if (lower == "dcsd") return DbClass::kDcSd;
  return DbClass::kDcMd;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xbench;

  const datagen::DbClass cls =
      argc > 1 ? ParseClass(argv[1]) : datagen::DbClass::kTcMd;
  const int64_t kb = argc > 2 ? ParseInt(argv[2]) : 128;

  datagen::GenConfig config;
  config.target_bytes = static_cast<uint64_t>(kb > 0 ? kb : 128) * 1024;
  config.seed = 42;
  std::printf("generating %s (~%lld KiB)...\n", datagen::DbClassName(cls),
              static_cast<long long>(kb));
  datagen::GeneratedDatabase db = datagen::Generate(cls, config);

  engines::NativeEngine engine;
  if (Status s = engine.BulkLoad(cls, workload::ToLoadDocuments(db));
      !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  for (const engines::IndexSpec& spec : workload::Table3Indexes(cls)) {
    (void)engine.CreateIndex(spec);
  }
  std::printf(
      "%zu documents loaded; $input is bound to their roots.\n"
      "Commands: \\schema \\dtd \\docs \\stats \\q\n",
      db.documents.size());

  std::string line;
  while (std::printf("xquery> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    const std::string query{Trim(line)};
    if (query.empty()) continue;
    if (query == "\\q") break;
    if (query == "\\schema" || query == "\\dtd") {
      xml::SchemaSummary summary;
      for (size_t i = 0; i < db.documents.size() && i < 50; ++i) {
        summary.AddDocument(db.documents[i].dom);
      }
      std::fputs(query == "\\schema" ? summary.ToTree().c_str()
                                     : summary.ToDtd().c_str(),
                 stdout);
      continue;
    }
    if (query == "\\docs") {
      for (size_t i = 0; i < db.documents.size(); ++i) {
        std::printf("%s%s", i == 0 ? "" : ", ",
                    db.documents[i].name.c_str());
        if (i == 19 && db.documents.size() > 20) {
          std::printf(", ... (%zu total)", db.documents.size());
          break;
        }
      }
      std::printf("\n");
      continue;
    }
    if (query == "\\stats") {
      std::printf("documents=%zu stored=%llu bytes, disk reads=%llu "
                  "writes=%llu, virtual I/O=%.1f ms\n",
                  engine.document_count(),
                  static_cast<unsigned long long>(engine.stored_bytes()),
                  static_cast<unsigned long long>(engine.disk().reads()),
                  static_cast<unsigned long long>(engine.disk().writes()),
                  engine.IoMillis());
      continue;
    }

    engine.ColdRestart();
    Stopwatch watch;
    const double io0 = engine.IoMillis();
    auto result = engine.Query(query);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    const double cpu = watch.ElapsedMillis();
    std::fputs(result->ToText().c_str(), stdout);
    std::printf("-- %zu item(s), %.1f ms CPU + %.1f ms I/O (cold)\n",
                result->items.size(), cpu, engine.IoMillis() - io0);
  }
  return 0;
}
