// News archive (TC/MD scenario): a Reuters-like article corpus. Shows the
// text-centric side of XBench: text search, quantified queries, structural
// transformation, and the schema summarizer on loosely structured
// documents.
#include <cstdio>

#include "datagen/generator.h"
#include "engines/native_engine.h"
#include "workload/queries.h"
#include "workload/runner.h"
#include "xml/schema_summary.h"

int main() {
  using namespace xbench;

  datagen::GenConfig config;
  config.target_bytes = 160 * 1024;
  config.seed = 33;
  datagen::GeneratedDatabase db =
      datagen::Generate(datagen::DbClass::kTcMd, config);
  std::printf("news corpus: %zu articles (%llu bytes)\n\n",
              db.documents.size(),
              static_cast<unsigned long long>(db.total_bytes));

  // Derive the corpus schema from instances (paper Figure 2).
  xml::SchemaSummary summary;
  for (size_t i = 0; i < db.documents.size() && i < 20; ++i) {
    summary.AddDocument(db.documents[i].dom);
  }
  std::printf("derived schema (first 20 articles):\n%s\n",
              summary.ToTree().c_str());

  engines::NativeEngine engine;
  if (Status s = engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db));
      !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }
  (void)engine.CreateIndex({"article/@id", "article/@id"});

  const workload::QueryParams params =
      workload::DeriveParams(db.db_class, db.seeds);

  struct Demo {
    const char* label;
    workload::QueryId id;
  };
  for (const Demo& demo : std::initializer_list<Demo>{
           {"articles by the well-known author (Q2)", workload::QueryId::kQ2},
           {"heading after 'Introduction' (Q4)", workload::QueryId::kQ4},
           {"keyword co-occurrence in a paragraph (Q6)",
            workload::QueryId::kQ6},
           {"authors with empty contact info (Q15)", workload::QueryId::kQ15},
           {"uni-gram text search (Q17)", workload::QueryId::kQ17},
           {"phrase search with construction (Q18)",
            workload::QueryId::kQ18}}) {
    workload::ExecutionResult result =
        workload::RunQuery(engine, demo.id, db.db_class, params);
    if (!result.status.ok()) {
      std::printf("%-45s ERROR %s\n", demo.label,
                  result.status.ToString().c_str());
      continue;
    }
    std::printf("%-45s %4zu hits, %6.1f ms\n", demo.label,
                result.lines.size(), result.TotalMillis());
    if (!result.lines.empty()) {
      std::printf("  e.g. %.70s\n", result.lines[0].c_str());
    }
  }
  return 0;
}
