// Catalog search (DC/SD scenario): the e-commerce catalog workload from
// the paper's motivation — generate catalog.xml from the TPC-W-like
// substrate, load it into both a shredding engine and the native engine,
// and answer the same product queries on each, printing answers and
// simulated cost side by side.
#include <cstdio>

#include "datagen/generator.h"
#include "engines/native_engine.h"
#include "engines/shred_engine.h"
#include "workload/classes.h"
#include "workload/queries.h"
#include "workload/runner.h"

int main() {
  using namespace xbench;

  datagen::GenConfig config;
  config.target_bytes = 128 * 1024;
  config.seed = 21;
  datagen::GeneratedDatabase db =
      datagen::Generate(datagen::DbClass::kDcSd, config);
  std::printf("catalog.xml with %lld items (%llu bytes)\n",
              static_cast<long long>(db.seeds.item_count),
              static_cast<unsigned long long>(db.total_bytes));

  engines::NativeEngine native;
  engines::ShredEngine shredded(engines::EngineKind::kShredDb2);
  for (engines::XmlDbms* engine :
       {static_cast<engines::XmlDbms*>(&native),
        static_cast<engines::XmlDbms*>(&shredded)}) {
    Status status =
        engine->BulkLoad(db.db_class, workload::ToLoadDocuments(db));
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", engine->name().c_str(),
                   status.ToString().c_str());
      return 1;
    }
    (void)workload::CreateTable3Indexes(*engine, db.db_class);
  }

  const workload::QueryParams params =
      workload::DeriveParams(db.db_class, db.seeds);
  std::printf("\nlooking up item %s, searching for '%s'\n\n",
              params.item_id.c_str(), params.search_word.c_str());

  for (workload::QueryId id :
       {workload::QueryId::kQ5, workload::QueryId::kQ8,
        workload::QueryId::kQ14, workload::QueryId::kQ17}) {
    std::printf("-- %s (%s)\n", workload::QueryName(id),
                workload::QueryCategory(id));
    for (engines::XmlDbms* engine :
         {static_cast<engines::XmlDbms*>(&shredded),
          static_cast<engines::XmlDbms*>(&native)}) {
      workload::ExecutionResult result =
          workload::RunQuery(*engine, id, db.db_class, params);
      if (!result.status.ok()) {
        std::printf("  %-18s %s\n", engine->name().c_str(),
                    result.status.ToString().c_str());
        continue;
      }
      std::printf("  %-18s %4zu results in %6.1f ms (%.1f CPU + %.1f I/O)\n",
                  engine->name().c_str(), result.lines.size(),
                  result.TotalMillis(), result.cpu_millis, result.io_millis);
      if (!result.lines.empty()) {
        std::printf("    first: %.70s\n", result.lines[0].c_str());
      }
    }
  }
  return 0;
}
