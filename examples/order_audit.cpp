// Order audit (DC/MD scenario): transactional order documents plus the
// flat customer tables, exercised across all four engines — retrieval of
// whole documents (Q16), value joins across documents (Q19), and the
// Xcolumn engine's side-table + CLOB-fetch plan.
#include <cstdio>

#include "datagen/generator.h"
#include "engines/clob_engine.h"
#include "engines/native_engine.h"
#include "workload/queries.h"
#include "workload/runner.h"

int main() {
  using namespace xbench;

  datagen::GenConfig config;
  config.target_bytes = 128 * 1024;
  config.seed = 55;
  datagen::GeneratedDatabase db =
      datagen::Generate(datagen::DbClass::kDcMd, config);
  std::printf("order database: %lld orders, %lld customers (%zu files)\n",
              static_cast<long long>(db.seeds.order_count),
              static_cast<long long>(db.seeds.customer_count),
              db.documents.size());

  const workload::QueryParams params =
      workload::DeriveParams(db.db_class, db.seeds);

  // Native engine: whole-document retrieval and the cross-document join.
  engines::NativeEngine native;
  if (Status s = native.BulkLoad(db.db_class, workload::ToLoadDocuments(db));
      !s.ok()) {
    std::fprintf(stderr, "native load: %s\n", s.ToString().c_str());
    return 1;
  }
  (void)workload::CreateTable3Indexes(native, db.db_class);

  auto q16 = workload::RunQuery(native, workload::QueryId::kQ16, db.db_class,
                                params);
  std::printf("\nQ16 retrieve order %s (%.1f ms):\n  %.100s...\n",
              params.order_id.c_str(), q16.TotalMillis(),
              q16.lines.empty() ? "" : q16.lines[0].c_str());

  auto q19 = workload::RunQuery(native, workload::QueryId::kQ19, db.db_class,
                                params);
  std::printf("Q19 customer+status join (%.1f ms):\n", q19.TotalMillis());
  for (const std::string& line : q19.lines) {
    std::printf("  %s\n", line.c_str());
  }

  // Xcolumn: the same order located via side tables, fetched intact.
  engines::ClobEngine clob;
  if (Status s = clob.BulkLoad(db.db_class, workload::ToLoadDocuments(db));
      !s.ok()) {
    std::fprintf(stderr, "xcolumn load: %s\n", s.ToString().c_str());
    return 1;
  }
  (void)workload::CreateTable3Indexes(clob, db.db_class);
  auto q5 = workload::RunQuery(clob, workload::QueryId::kQ5, db.db_class,
                               params);
  std::printf("\nXcolumn Q5 first order line (%.1f ms):\n  %s\n",
              q5.TotalMillis(), q5.lines.empty() ? "-" : q5.lines[0].c_str());

  // Audit sweep: orders in the period with unexplained (comment-less)
  // lines, via the native engine's Q14.
  auto q14 = workload::RunQuery(native, workload::QueryId::kQ14, db.db_class,
                                params);
  std::printf("\nQ14 audit: %zu orders in [%s, %s] have lines without "
              "comments (%.1f ms)\n",
              q14.lines.size(), params.date_lo.c_str(),
              params.date_hi.c_str(), q14.TotalMillis());
  return 0;
}
