// Quickstart: generate a small XBench database, load it into the native
// XML engine, create a value index, and run an XQuery — the minimal
// end-to-end path through the library. Set XBENCH_TRACE_OUT=<path> to
// dump a Chrome trace of the run (open it in Perfetto or
// chrome://tracing) and XBENCH_REPORT=<path> to dump the metrics
// registry snapshot. The run is single-threaded and the tracer clock is
// virtual, so the trace is byte-identical across runs — the
// trace_quickstart_golden test diffs it against
// tools/golden/trace_quickstart.json.
#include <cstdio>
#include <cstdlib>

#include "datagen/article_generator.h"
#include "datagen/generator.h"
#include "datagen/word_pool.h"
#include "engines/native_engine.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/runner.h"

int main() {
  using namespace xbench;

  obs::EnvTraceSession trace_session;

  // 1. Generate a ~64 KiB TC/MD database (a small news-article corpus).
  datagen::GenConfig config;
  config.target_bytes = 64 * 1024;
  config.seed = 7;
  datagen::GeneratedDatabase db =
      datagen::Generate(datagen::DbClass::kTcMd, config);
  std::printf("generated %zu article documents (%llu bytes)\n",
              db.documents.size(),
              static_cast<unsigned long long>(db.total_bytes));

  // 2. Bulk-load into the native engine.
  engines::NativeEngine engine;
  Status status = engine.BulkLoad(db.db_class, workload::ToLoadDocuments(db));
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 3. Index article ids (paper Table 3) and run an indexed lookup.
  if (Status s = engine.CreateIndex({"article/@id", "article/@id"}); !s.ok()) {
    std::fprintf(stderr, "index failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto result = engine.QueryWithIndex(
      "article/@id", datagen::ArticleId(1),
      "for $a in $input return <hit><id>{$a/@id}</id>"
      "<title>{data($a/prolog/title)}</title></hit>");
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed lookup:\n%s", result->ToText().c_str());

  // 4. Run a collection-wide XQuery (no index).
  datagen::WordPool words;
  const std::string needle = words.WordAt(3);  // a frequent corpus word
  auto count = engine.Query(
      "count(for $a in $input where some $p in $a//p "
      "satisfies contains-word($p, \"" +
      needle + "\") return $a)");
  if (!count.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 count.status().ToString().c_str());
    return 1;
  }
  std::printf("articles mentioning '%s': %s", needle.c_str(),
              count->ToText().c_str());
  std::printf("virtual I/O spent: %.1f ms\n", engine.IoMillis());

  // 5. Optional observability dump for tooling (ctest validates these).
  if (const char* report_path = std::getenv("XBENCH_REPORT")) {
    Status written = obs::WriteFile(
        report_path, obs::MetricsRegistry::Default().ToJson());
    if (!written.ok()) {
      std::fprintf(stderr, "report write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("metrics snapshot written to %s\n", report_path);
  }
  return 0;
}
