file(REMOVE_RECURSE
  "CMakeFiles/bench_q14.dir/bench_q14.cc.o"
  "CMakeFiles/bench_q14.dir/bench_q14.cc.o.d"
  "bench_q14"
  "bench_q14.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q14.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
