# Empty compiler generated dependencies file for bench_q14.
# This may be replaced when dependencies are built.
