file(REMOVE_RECURSE
  "CMakeFiles/bench_q5.dir/bench_q5.cc.o"
  "CMakeFiles/bench_q5.dir/bench_q5.cc.o.d"
  "bench_q5"
  "bench_q5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
