# Empty compiler generated dependencies file for bench_q5.
# This may be replaced when dependencies are built.
