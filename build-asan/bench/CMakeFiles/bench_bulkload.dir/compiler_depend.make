# Empty compiler generated dependencies file for bench_bulkload.
# This may be replaced when dependencies are built.
