file(REMOVE_RECURSE
  "CMakeFiles/bench_bulkload.dir/bench_bulkload.cc.o"
  "CMakeFiles/bench_bulkload.dir/bench_bulkload.cc.o.d"
  "bench_bulkload"
  "bench_bulkload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bulkload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
