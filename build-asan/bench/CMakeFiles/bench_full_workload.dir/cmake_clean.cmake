file(REMOVE_RECURSE
  "CMakeFiles/bench_full_workload.dir/bench_full_workload.cc.o"
  "CMakeFiles/bench_full_workload.dir/bench_full_workload.cc.o.d"
  "bench_full_workload"
  "bench_full_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_full_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
