# Empty dependencies file for bench_full_workload.
# This may be replaced when dependencies are built.
