file(REMOVE_RECURSE
  "CMakeFiles/bench_schemas.dir/bench_schemas.cc.o"
  "CMakeFiles/bench_schemas.dir/bench_schemas.cc.o.d"
  "bench_schemas"
  "bench_schemas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schemas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
