# Empty compiler generated dependencies file for bench_schemas.
# This may be replaced when dependencies are built.
