file(REMOVE_RECURSE
  "CMakeFiles/bench_q8.dir/bench_q8.cc.o"
  "CMakeFiles/bench_q8.dir/bench_q8.cc.o.d"
  "bench_q8"
  "bench_q8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
