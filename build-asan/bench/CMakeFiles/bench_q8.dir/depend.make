# Empty dependencies file for bench_q8.
# This may be replaced when dependencies are built.
