file(REMOVE_RECURSE
  "CMakeFiles/bench_q17.dir/bench_q17.cc.o"
  "CMakeFiles/bench_q17.dir/bench_q17.cc.o.d"
  "bench_q17"
  "bench_q17.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q17.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
