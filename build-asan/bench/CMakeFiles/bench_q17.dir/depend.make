# Empty dependencies file for bench_q17.
# This may be replaced when dependencies are built.
