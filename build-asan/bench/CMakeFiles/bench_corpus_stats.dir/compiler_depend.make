# Empty compiler generated dependencies file for bench_corpus_stats.
# This may be replaced when dependencies are built.
