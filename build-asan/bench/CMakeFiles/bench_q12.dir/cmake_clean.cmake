file(REMOVE_RECURSE
  "CMakeFiles/bench_q12.dir/bench_q12.cc.o"
  "CMakeFiles/bench_q12.dir/bench_q12.cc.o.d"
  "bench_q12"
  "bench_q12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
