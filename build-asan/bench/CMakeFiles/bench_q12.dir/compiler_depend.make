# Empty compiler generated dependencies file for bench_q12.
# This may be replaced when dependencies are built.
