# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-asan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(quickstart_obs_run "/root/repo/build-asan/examples/quickstart")
set_tests_properties(quickstart_obs_run PROPERTIES  ENVIRONMENT "XBENCH_TRACE=/root/repo/build-asan/examples/quickstart_trace.json;XBENCH_REPORT=/root/repo/build-asan/examples/quickstart_metrics.json" FIXTURES_SETUP "quickstart_obs" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(quickstart_obs_validate "/root/repo/build-asan/tools/json_check" "/root/repo/build-asan/examples/quickstart_trace.json" "/root/repo/build-asan/examples/quickstart_metrics.json")
set_tests_properties(quickstart_obs_validate PROPERTIES  FIXTURES_REQUIRED "quickstart_obs" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
