# Empty dependencies file for xquery_shell.
# This may be replaced when dependencies are built.
