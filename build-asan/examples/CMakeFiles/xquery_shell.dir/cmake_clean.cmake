file(REMOVE_RECURSE
  "CMakeFiles/xquery_shell.dir/xquery_shell.cpp.o"
  "CMakeFiles/xquery_shell.dir/xquery_shell.cpp.o.d"
  "xquery_shell"
  "xquery_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
