file(REMOVE_RECURSE
  "CMakeFiles/order_audit.dir/order_audit.cpp.o"
  "CMakeFiles/order_audit.dir/order_audit.cpp.o.d"
  "order_audit"
  "order_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
