# Empty compiler generated dependencies file for order_audit.
# This may be replaced when dependencies are built.
