# Empty dependencies file for news_archive.
# This may be replaced when dependencies are built.
