file(REMOVE_RECURSE
  "CMakeFiles/news_archive.dir/news_archive.cpp.o"
  "CMakeFiles/news_archive.dir/news_archive.cpp.o.d"
  "news_archive"
  "news_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
