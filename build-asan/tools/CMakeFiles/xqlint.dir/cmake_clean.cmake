file(REMOVE_RECURSE
  "CMakeFiles/xqlint.dir/xqlint.cc.o"
  "CMakeFiles/xqlint.dir/xqlint.cc.o.d"
  "xqlint"
  "xqlint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xqlint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
