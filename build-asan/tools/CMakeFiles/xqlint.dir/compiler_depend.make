# Empty compiler generated dependencies file for xqlint.
# This may be replaced when dependencies are built.
