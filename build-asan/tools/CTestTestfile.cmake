# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-asan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(xqlint_all_classes "/root/repo/build-asan/tools/xqlint" "--class" "all" "--query" "all")
set_tests_properties(xqlint_all_classes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
