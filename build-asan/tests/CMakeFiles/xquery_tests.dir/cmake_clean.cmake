file(REMOVE_RECURSE
  "CMakeFiles/xquery_tests.dir/xquery_eval_test.cc.o"
  "CMakeFiles/xquery_tests.dir/xquery_eval_test.cc.o.d"
  "CMakeFiles/xquery_tests.dir/xquery_functions_test.cc.o"
  "CMakeFiles/xquery_tests.dir/xquery_functions_test.cc.o.d"
  "CMakeFiles/xquery_tests.dir/xquery_lexer_test.cc.o"
  "CMakeFiles/xquery_tests.dir/xquery_lexer_test.cc.o.d"
  "CMakeFiles/xquery_tests.dir/xquery_parser_test.cc.o"
  "CMakeFiles/xquery_tests.dir/xquery_parser_test.cc.o.d"
  "xquery_tests"
  "xquery_tests.pdb"
  "xquery_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
