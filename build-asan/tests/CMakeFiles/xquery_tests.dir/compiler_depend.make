# Empty compiler generated dependencies file for xquery_tests.
# This may be replaced when dependencies are built.
