
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cc" "tests/CMakeFiles/system_tests.dir/analysis_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/analysis_test.cc.o.d"
  "/root/repo/tests/cross_engine_test.cc" "tests/CMakeFiles/system_tests.dir/cross_engine_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/cross_engine_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/system_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/dtd_test.cc" "tests/CMakeFiles/system_tests.dir/dtd_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/dtd_test.cc.o.d"
  "/root/repo/tests/engines_test.cc" "tests/CMakeFiles/system_tests.dir/engines_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/engines_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/system_tests.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/harness_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/system_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/shredder_test.cc" "tests/CMakeFiles/system_tests.dir/shredder_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/shredder_test.cc.o.d"
  "/root/repo/tests/tpcw_test.cc" "tests/CMakeFiles/system_tests.dir/tpcw_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/tpcw_test.cc.o.d"
  "/root/repo/tests/updates_test.cc" "tests/CMakeFiles/system_tests.dir/updates_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/updates_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/system_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/xbench.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
