file(REMOVE_RECURSE
  "CMakeFiles/system_tests.dir/analysis_test.cc.o"
  "CMakeFiles/system_tests.dir/analysis_test.cc.o.d"
  "CMakeFiles/system_tests.dir/cross_engine_test.cc.o"
  "CMakeFiles/system_tests.dir/cross_engine_test.cc.o.d"
  "CMakeFiles/system_tests.dir/datagen_test.cc.o"
  "CMakeFiles/system_tests.dir/datagen_test.cc.o.d"
  "CMakeFiles/system_tests.dir/dtd_test.cc.o"
  "CMakeFiles/system_tests.dir/dtd_test.cc.o.d"
  "CMakeFiles/system_tests.dir/engines_test.cc.o"
  "CMakeFiles/system_tests.dir/engines_test.cc.o.d"
  "CMakeFiles/system_tests.dir/harness_test.cc.o"
  "CMakeFiles/system_tests.dir/harness_test.cc.o.d"
  "CMakeFiles/system_tests.dir/property_test.cc.o"
  "CMakeFiles/system_tests.dir/property_test.cc.o.d"
  "CMakeFiles/system_tests.dir/shredder_test.cc.o"
  "CMakeFiles/system_tests.dir/shredder_test.cc.o.d"
  "CMakeFiles/system_tests.dir/tpcw_test.cc.o"
  "CMakeFiles/system_tests.dir/tpcw_test.cc.o.d"
  "CMakeFiles/system_tests.dir/updates_test.cc.o"
  "CMakeFiles/system_tests.dir/updates_test.cc.o.d"
  "CMakeFiles/system_tests.dir/workload_test.cc.o"
  "CMakeFiles/system_tests.dir/workload_test.cc.o.d"
  "system_tests"
  "system_tests.pdb"
  "system_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
