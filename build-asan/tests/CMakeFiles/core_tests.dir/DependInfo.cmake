
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/core_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/obs_test.cc" "tests/CMakeFiles/core_tests.dir/obs_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/obs_test.cc.o.d"
  "/root/repo/tests/relational_test.cc" "tests/CMakeFiles/core_tests.dir/relational_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/relational_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/core_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/core_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/xml_test.cc" "tests/CMakeFiles/core_tests.dir/xml_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/xml_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/xbench.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
