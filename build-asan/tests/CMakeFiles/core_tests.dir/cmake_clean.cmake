file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/common_test.cc.o"
  "CMakeFiles/core_tests.dir/common_test.cc.o.d"
  "CMakeFiles/core_tests.dir/obs_test.cc.o"
  "CMakeFiles/core_tests.dir/obs_test.cc.o.d"
  "CMakeFiles/core_tests.dir/relational_test.cc.o"
  "CMakeFiles/core_tests.dir/relational_test.cc.o.d"
  "CMakeFiles/core_tests.dir/stats_test.cc.o"
  "CMakeFiles/core_tests.dir/stats_test.cc.o.d"
  "CMakeFiles/core_tests.dir/storage_test.cc.o"
  "CMakeFiles/core_tests.dir/storage_test.cc.o.d"
  "CMakeFiles/core_tests.dir/xml_test.cc.o"
  "CMakeFiles/core_tests.dir/xml_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
