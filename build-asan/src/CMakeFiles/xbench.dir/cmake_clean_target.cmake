file(REMOVE_RECURSE
  "libxbench.a"
)
