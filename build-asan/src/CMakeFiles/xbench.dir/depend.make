# Empty dependencies file for xbench.
# This may be replaced when dependencies are built.
