
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analyzer.cc" "src/CMakeFiles/xbench.dir/analysis/analyzer.cc.o" "gcc" "src/CMakeFiles/xbench.dir/analysis/analyzer.cc.o.d"
  "/root/repo/src/analysis/class_schemas.cc" "src/CMakeFiles/xbench.dir/analysis/class_schemas.cc.o" "gcc" "src/CMakeFiles/xbench.dir/analysis/class_schemas.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/xbench.dir/common/random.cc.o" "gcc" "src/CMakeFiles/xbench.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/xbench.dir/common/status.cc.o" "gcc" "src/CMakeFiles/xbench.dir/common/status.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/xbench.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/xbench.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/xbench.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/xbench.dir/common/strings.cc.o.d"
  "/root/repo/src/datagen/article_generator.cc" "src/CMakeFiles/xbench.dir/datagen/article_generator.cc.o" "gcc" "src/CMakeFiles/xbench.dir/datagen/article_generator.cc.o.d"
  "/root/repo/src/datagen/catalog_generator.cc" "src/CMakeFiles/xbench.dir/datagen/catalog_generator.cc.o" "gcc" "src/CMakeFiles/xbench.dir/datagen/catalog_generator.cc.o.d"
  "/root/repo/src/datagen/dictionary_generator.cc" "src/CMakeFiles/xbench.dir/datagen/dictionary_generator.cc.o" "gcc" "src/CMakeFiles/xbench.dir/datagen/dictionary_generator.cc.o.d"
  "/root/repo/src/datagen/generator.cc" "src/CMakeFiles/xbench.dir/datagen/generator.cc.o" "gcc" "src/CMakeFiles/xbench.dir/datagen/generator.cc.o.d"
  "/root/repo/src/datagen/order_generator.cc" "src/CMakeFiles/xbench.dir/datagen/order_generator.cc.o" "gcc" "src/CMakeFiles/xbench.dir/datagen/order_generator.cc.o.d"
  "/root/repo/src/datagen/template_engine.cc" "src/CMakeFiles/xbench.dir/datagen/template_engine.cc.o" "gcc" "src/CMakeFiles/xbench.dir/datagen/template_engine.cc.o.d"
  "/root/repo/src/datagen/word_pool.cc" "src/CMakeFiles/xbench.dir/datagen/word_pool.cc.o" "gcc" "src/CMakeFiles/xbench.dir/datagen/word_pool.cc.o.d"
  "/root/repo/src/engines/clob_engine.cc" "src/CMakeFiles/xbench.dir/engines/clob_engine.cc.o" "gcc" "src/CMakeFiles/xbench.dir/engines/clob_engine.cc.o.d"
  "/root/repo/src/engines/dad.cc" "src/CMakeFiles/xbench.dir/engines/dad.cc.o" "gcc" "src/CMakeFiles/xbench.dir/engines/dad.cc.o.d"
  "/root/repo/src/engines/dbms.cc" "src/CMakeFiles/xbench.dir/engines/dbms.cc.o" "gcc" "src/CMakeFiles/xbench.dir/engines/dbms.cc.o.d"
  "/root/repo/src/engines/native_engine.cc" "src/CMakeFiles/xbench.dir/engines/native_engine.cc.o" "gcc" "src/CMakeFiles/xbench.dir/engines/native_engine.cc.o.d"
  "/root/repo/src/engines/shred_engine.cc" "src/CMakeFiles/xbench.dir/engines/shred_engine.cc.o" "gcc" "src/CMakeFiles/xbench.dir/engines/shred_engine.cc.o.d"
  "/root/repo/src/engines/shredder.cc" "src/CMakeFiles/xbench.dir/engines/shredder.cc.o" "gcc" "src/CMakeFiles/xbench.dir/engines/shredder.cc.o.d"
  "/root/repo/src/harness/driver.cc" "src/CMakeFiles/xbench.dir/harness/driver.cc.o" "gcc" "src/CMakeFiles/xbench.dir/harness/driver.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/CMakeFiles/xbench.dir/harness/report.cc.o" "gcc" "src/CMakeFiles/xbench.dir/harness/report.cc.o.d"
  "/root/repo/src/harness/scale.cc" "src/CMakeFiles/xbench.dir/harness/scale.cc.o" "gcc" "src/CMakeFiles/xbench.dir/harness/scale.cc.o.d"
  "/root/repo/src/obs/json.cc" "src/CMakeFiles/xbench.dir/obs/json.cc.o" "gcc" "src/CMakeFiles/xbench.dir/obs/json.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/CMakeFiles/xbench.dir/obs/metrics.cc.o" "gcc" "src/CMakeFiles/xbench.dir/obs/metrics.cc.o.d"
  "/root/repo/src/obs/trace.cc" "src/CMakeFiles/xbench.dir/obs/trace.cc.o" "gcc" "src/CMakeFiles/xbench.dir/obs/trace.cc.o.d"
  "/root/repo/src/relational/btree.cc" "src/CMakeFiles/xbench.dir/relational/btree.cc.o" "gcc" "src/CMakeFiles/xbench.dir/relational/btree.cc.o.d"
  "/root/repo/src/relational/exec.cc" "src/CMakeFiles/xbench.dir/relational/exec.cc.o" "gcc" "src/CMakeFiles/xbench.dir/relational/exec.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/xbench.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/xbench.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/CMakeFiles/xbench.dir/relational/table.cc.o" "gcc" "src/CMakeFiles/xbench.dir/relational/table.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/xbench.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/xbench.dir/relational/value.cc.o.d"
  "/root/repo/src/stats/corpus_analyzer.cc" "src/CMakeFiles/xbench.dir/stats/corpus_analyzer.cc.o" "gcc" "src/CMakeFiles/xbench.dir/stats/corpus_analyzer.cc.o.d"
  "/root/repo/src/stats/distribution.cc" "src/CMakeFiles/xbench.dir/stats/distribution.cc.o" "gcc" "src/CMakeFiles/xbench.dir/stats/distribution.cc.o.d"
  "/root/repo/src/stats/fitting.cc" "src/CMakeFiles/xbench.dir/stats/fitting.cc.o" "gcc" "src/CMakeFiles/xbench.dir/stats/fitting.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/xbench.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/xbench.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk.cc" "src/CMakeFiles/xbench.dir/storage/disk.cc.o" "gcc" "src/CMakeFiles/xbench.dir/storage/disk.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/xbench.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/xbench.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/xbench.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/xbench.dir/storage/page.cc.o.d"
  "/root/repo/src/tpcw/mapping.cc" "src/CMakeFiles/xbench.dir/tpcw/mapping.cc.o" "gcc" "src/CMakeFiles/xbench.dir/tpcw/mapping.cc.o.d"
  "/root/repo/src/tpcw/populate.cc" "src/CMakeFiles/xbench.dir/tpcw/populate.cc.o" "gcc" "src/CMakeFiles/xbench.dir/tpcw/populate.cc.o.d"
  "/root/repo/src/tpcw/rows.cc" "src/CMakeFiles/xbench.dir/tpcw/rows.cc.o" "gcc" "src/CMakeFiles/xbench.dir/tpcw/rows.cc.o.d"
  "/root/repo/src/workload/classes.cc" "src/CMakeFiles/xbench.dir/workload/classes.cc.o" "gcc" "src/CMakeFiles/xbench.dir/workload/classes.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/CMakeFiles/xbench.dir/workload/queries.cc.o" "gcc" "src/CMakeFiles/xbench.dir/workload/queries.cc.o.d"
  "/root/repo/src/workload/relational_plans.cc" "src/CMakeFiles/xbench.dir/workload/relational_plans.cc.o" "gcc" "src/CMakeFiles/xbench.dir/workload/relational_plans.cc.o.d"
  "/root/repo/src/workload/runner.cc" "src/CMakeFiles/xbench.dir/workload/runner.cc.o" "gcc" "src/CMakeFiles/xbench.dir/workload/runner.cc.o.d"
  "/root/repo/src/xml/dtd.cc" "src/CMakeFiles/xbench.dir/xml/dtd.cc.o" "gcc" "src/CMakeFiles/xbench.dir/xml/dtd.cc.o.d"
  "/root/repo/src/xml/node.cc" "src/CMakeFiles/xbench.dir/xml/node.cc.o" "gcc" "src/CMakeFiles/xbench.dir/xml/node.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/xbench.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/xbench.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/schema_summary.cc" "src/CMakeFiles/xbench.dir/xml/schema_summary.cc.o" "gcc" "src/CMakeFiles/xbench.dir/xml/schema_summary.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/xbench.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/xbench.dir/xml/serializer.cc.o.d"
  "/root/repo/src/xquery/ast.cc" "src/CMakeFiles/xbench.dir/xquery/ast.cc.o" "gcc" "src/CMakeFiles/xbench.dir/xquery/ast.cc.o.d"
  "/root/repo/src/xquery/evaluator.cc" "src/CMakeFiles/xbench.dir/xquery/evaluator.cc.o" "gcc" "src/CMakeFiles/xbench.dir/xquery/evaluator.cc.o.d"
  "/root/repo/src/xquery/functions.cc" "src/CMakeFiles/xbench.dir/xquery/functions.cc.o" "gcc" "src/CMakeFiles/xbench.dir/xquery/functions.cc.o.d"
  "/root/repo/src/xquery/lexer.cc" "src/CMakeFiles/xbench.dir/xquery/lexer.cc.o" "gcc" "src/CMakeFiles/xbench.dir/xquery/lexer.cc.o.d"
  "/root/repo/src/xquery/parser.cc" "src/CMakeFiles/xbench.dir/xquery/parser.cc.o" "gcc" "src/CMakeFiles/xbench.dir/xquery/parser.cc.o.d"
  "/root/repo/src/xquery/sequence.cc" "src/CMakeFiles/xbench.dir/xquery/sequence.cc.o" "gcc" "src/CMakeFiles/xbench.dir/xquery/sequence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
