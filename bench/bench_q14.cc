// Reproduces paper Table 9: query Q14 (missing elements) execution time
// across engines, classes, and scales.
#include "bench_common.h"

int main() {
  return xbench::bench::RunQueryTableBench(xbench::workload::QueryId::kQ14,
                                           "Table 9");
}
