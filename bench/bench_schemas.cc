// Reproduces paper Figures 1-4: the schema diagrams of the four database
// classes, rendered as ASCII trees derived from the generated data (the
// same derive-from-instances process the paper used), plus the Table 1
// class matrix.
#include <cstdio>

#include "datagen/generator.h"
#include "stats/corpus_analyzer.h"
#include "workload/classes.h"
#include "xml/schema_summary.h"

int main() {
  using namespace xbench;
  std::printf("XBench reproduction — schema diagrams (paper Figures 1-4)\n");
  std::printf(
      "\n== Table 1: Classification & Sample Applications ==\n"
      "        SD                     MD\n"
      "  TC    Online dictionaries    News corpus, digital libraries\n"
      "  DC    E-commerce catalogs    Transactional data\n");

  const char* figures[] = {"Figure 3 (DC/SD catalog.xml)",
                           "Figure 4 (DC/MD orderXXX.xml)",
                           "Figure 1 (TC/SD dictionary.xml)",
                           "Figure 2 (TC/MD articleXXX.xml)"};
  int figure_index = 0;
  for (datagen::DbClass cls : workload::AllClasses()) {
    datagen::GenConfig config;
    config.target_bytes = 128 * 1024;
    config.seed = 42;
    datagen::GeneratedDatabase db = datagen::Generate(cls, config);

    xml::SchemaSummary summary;
    size_t limit = 50;  // enough instances to see optional children
    for (const datagen::GeneratedDocument& doc : db.documents) {
      summary.AddDocument(doc.dom);
      if (--limit == 0) break;
    }
    std::printf("\n== %s ==\n", figures[figure_index++]);
    std::printf("legend: '?' optional child, '*' repeated child, @ attr\n");
    std::fputs(summary.ToTree().c_str(), stdout);
    std::printf("-- inferred DTD (paper's companion report ships these) --\n");
    std::fputs(summary.ToDtd().c_str(), stdout);
  }
  return 0;
}
