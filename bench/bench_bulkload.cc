// Reproduces paper Table 4 (bulk loading time) and prints the Table 3
// index configuration used throughout.
#include <cstdio>

#include "harness/driver.h"

int main() {
  using namespace xbench;
  harness::Driver driver;
  std::printf("XBench reproduction — bulk loading (paper Table 4)\n");
  std::printf("scales: small=%lluKB normal=%lluKB large=%lluKB, seed=%llu\n",
              static_cast<unsigned long long>(
                  harness::TargetBytes(workload::Scale::kSmall) / 1024),
              static_cast<unsigned long long>(
                  harness::TargetBytes(workload::Scale::kNormal) / 1024),
              static_cast<unsigned long long>(
                  harness::TargetBytes(workload::Scale::kLarge) / 1024),
              static_cast<unsigned long long>(harness::BenchSeed()));
  std::fputs(driver.IndexTable().c_str(), stdout);
  harness::ResultTable table = driver.BulkLoadTable();
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
