// Google-benchmark micro-benchmarks over the substrates: XML parsing and
// serialization throughput, B+-tree operations, XQuery evaluation, heap
// file scans, and shredding — the per-component costs that compose into
// the paper's end-to-end numbers.
#include <benchmark/benchmark.h>

#include "datagen/generator.h"
#include "engines/dad.h"
#include "engines/shredder.h"
#include "relational/btree.h"
#include "workload/runner.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"

namespace {

using namespace xbench;

const datagen::GeneratedDatabase& SharedDb(datagen::DbClass cls) {
  static auto* cache =
      new std::map<datagen::DbClass, datagen::GeneratedDatabase>();
  auto it = cache->find(cls);
  if (it == cache->end()) {
    datagen::GenConfig config;
    config.target_bytes = 256 * 1024;
    config.seed = 42;
    it = cache->emplace(cls, datagen::Generate(cls, config)).first;
  }
  return it->second;
}

void BM_XmlParse(benchmark::State& state) {
  const auto& db = SharedDb(datagen::DbClass::kTcSd);
  const std::string& text = db.documents[0].text;
  for (auto _ : state) {
    auto doc = xml::Parse(text, "bench.xml");
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_XmlParse)->Unit(benchmark::kMillisecond);

void BM_XmlSerialize(benchmark::State& state) {
  const auto& db = SharedDb(datagen::DbClass::kTcSd);
  for (auto _ : state) {
    std::string out = xml::Serialize(db.documents[0].dom);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_XmlSerialize)->Unit(benchmark::kMillisecond);

void BM_BTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    VirtualClock clock;
    relational::BTreeIndex tree(clock);
    for (int64_t i = 0; i < state.range(0); ++i) {
      tree.Insert({relational::Value::Int(i * 2654435761 % 1000000)},
                  static_cast<storage::RecordId>(i));
    }
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BTreeLookup(benchmark::State& state) {
  VirtualClock clock;
  relational::BTreeIndex tree(clock);
  for (int64_t i = 0; i < state.range(0); ++i) {
    tree.Insert({relational::Value::Int(i)}, static_cast<storage::RecordId>(i));
  }
  int64_t key = 0;
  for (auto _ : state) {
    auto rids = tree.Lookup({relational::Value::Int(key++ % state.range(0))});
    benchmark::DoNotOptimize(rids);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup)->Arg(10000)->Arg(100000);

void BM_XQueryPathScan(benchmark::State& state) {
  const auto& db = SharedDb(datagen::DbClass::kTcSd);
  xquery::Bindings bindings;
  bindings["input"] = {xquery::Item::Node(db.documents[0].dom.root())};
  for (auto _ : state) {
    auto result = xquery::EvaluateQuery("count($input//qt)", bindings);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_XQueryPathScan)->Unit(benchmark::kMillisecond);

void BM_XQueryFlworSort(benchmark::State& state) {
  const auto& db = SharedDb(datagen::DbClass::kTcSd);
  xquery::Bindings bindings;
  bindings["input"] = {xquery::Item::Node(db.documents[0].dom.root())};
  for (auto _ : state) {
    auto result = xquery::EvaluateQuery(
        "for $e in $input//entry order by $e/hw descending return data($e/hw)",
        bindings);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_XQueryFlworSort)->Unit(benchmark::kMillisecond);

void BM_Shred(benchmark::State& state) {
  const auto& db = SharedDb(datagen::DbClass::kDcMd);
  const engines::Dad dad = engines::ShredDadFor(datagen::DbClass::kDcMd);
  for (auto _ : state) {
    storage::SimulatedDisk disk;
    storage::BufferPool pool(disk, 2048);
    relational::Database database(disk, pool);
    (void)engines::CreateDadTables(dad, database);
    int64_t next_row = 0;
    for (const auto& doc : db.documents) {
      (void)engines::ShredDocument(*doc.dom.root(), doc.name, dad, {},
                                   database, next_row, nullptr);
    }
    benchmark::DoNotOptimize(next_row);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(db.total_bytes));
}
BENCHMARK(BM_Shred)->Unit(benchmark::kMillisecond);

void BM_Generate(benchmark::State& state) {
  const auto cls = static_cast<datagen::DbClass>(state.range(0));
  for (auto _ : state) {
    datagen::GenConfig config;
    config.target_bytes = 128 * 1024;
    config.seed = 42;
    auto db = datagen::Generate(cls, config);
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_Generate)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
