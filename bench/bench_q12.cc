// Reproduces paper Table 6: query Q12 (document construction) execution
// time across engines, classes, and scales.
#include "bench_common.h"

int main() {
  return xbench::bench::RunQueryTableBench(xbench::workload::QueryId::kQ12,
                                           "Table 6");
}
