// Reproduces paper Table 8: query Q8 (path expression with one unknown
// step) execution time across engines, classes, and scales.
#include "bench_common.h"

int main() {
  return xbench::bench::RunQueryTableBench(xbench::workload::QueryId::kQ8,
                                           "Table 8");
}
