// Reproduces paper Table 7: query Q17 (uni-gram text search) execution
// time across engines, classes, and scales.
#include "bench_common.h"

int main() {
  return xbench::bench::RunQueryTableBench(xbench::workload::QueryId::kQ17,
                                           "Table 7");
}
