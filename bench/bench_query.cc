// Reproduces the paper's per-query tables (Tables 5-9): execution time of
// one benchmark query across engines, classes, and scales. The query is a
// command-line parameter; with no argument every benchmark-subset query
// runs in paper-table order. Replaces the former one-binary-per-query
// bench_q5/q8/q12/q14/q17 set.
//
// Usage: bench_query [--query Q1..Q20]
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.h"

namespace {

using xbench::workload::QueryId;

const char* PaperTableFor(QueryId id) {
  switch (id) {
    case QueryId::kQ5:
      return "Table 5";
    case QueryId::kQ12:
      return "Table 6";
    case QueryId::kQ17:
      return "Table 7";
    case QueryId::kQ8:
      return "Table 8";
    case QueryId::kQ14:
      return "Table 9";
    default:
      return "extension (no paper table)";
  }
}

bool ParseQueryArg(const char* text, QueryId& out) {
  for (int i = 0; i < 20; ++i) {
    const auto id = static_cast<QueryId>(i);
    if (std::strcmp(text, xbench::workload::QueryName(id)) == 0) {
      out = id;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool profile = false;
  bool have_query = false;
  QueryId id = QueryId::kQ5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile") {
      profile = true;
    } else if (arg == "--query" && i + 1 < argc) {
      if (!ParseQueryArg(argv[++i], id)) {
        std::fprintf(stderr, "unknown query '%s'\n", argv[i]);
        return 2;
      }
      have_query = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_query [--query Q1..Q20] [--profile]\n");
      return 2;
    }
  }
  if (have_query) {
    return xbench::bench::RunQueryTableBench(id, PaperTableFor(id), profile);
  }
  for (QueryId each : {QueryId::kQ5, QueryId::kQ12, QueryId::kQ17,
                       QueryId::kQ8, QueryId::kQ14}) {
    const int rc =
        xbench::bench::RunQueryTableBench(each, PaperTableFor(each), profile);
    if (rc != 0) return rc;
  }
  return 0;
}
