// Reproduces the paper's per-query tables (Tables 5-9): execution time of
// one benchmark query across engines, classes, and scales. The query is a
// command-line parameter; with no argument every benchmark-subset query
// runs in paper-table order. Replaces the former one-binary-per-query
// bench_q5/q8/q12/q14/q17 set.
//
// Usage: bench_query [--query Q1..Q20] [--profile] [--parallelism 1,2,4]
//   --parallelism runs the intra-query parallelism sweep instead of the
//   paper tables: each query executes once per listed bound on the native
//   engine and the modeled execution time per bound is reported
//   (XBENCH_REPORT=<path> writes the JSON artifact).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using xbench::workload::QueryId;

const char* PaperTableFor(QueryId id) {
  switch (id) {
    case QueryId::kQ5:
      return "Table 5";
    case QueryId::kQ12:
      return "Table 6";
    case QueryId::kQ17:
      return "Table 7";
    case QueryId::kQ8:
      return "Table 8";
    case QueryId::kQ14:
      return "Table 9";
    default:
      return "extension (no paper table)";
  }
}

bool ParseQueryArg(const char* text, QueryId& out) {
  for (int i = 0; i < 20; ++i) {
    const auto id = static_cast<QueryId>(i);
    if (std::strcmp(text, xbench::workload::QueryName(id)) == 0) {
      out = id;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool profile = false;
  bool have_query = false;
  QueryId id = QueryId::kQ5;
  std::vector<int> parallelisms;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile") {
      profile = true;
    } else if (arg == "--query" && i + 1 < argc) {
      if (!ParseQueryArg(argv[++i], id)) {
        std::fprintf(stderr, "unknown query '%s'\n", argv[i]);
        return 2;
      }
      have_query = true;
    } else if (arg == "--parallelism" && i + 1 < argc) {
      std::string list = argv[++i];
      size_t pos = 0;
      while (pos < list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string item =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        const int p = std::atoi(item.c_str());
        if (p <= 0) {
          std::fprintf(stderr, "bad --parallelism entry '%s'\n", item.c_str());
          return 2;
        }
        parallelisms.push_back(p);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (parallelisms.empty()) {
        std::fprintf(stderr, "--parallelism needs at least one value\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_query [--query Q1..Q20] [--profile] "
                   "[--parallelism 1,2,4]\n");
      return 2;
    }
  }
  if (!parallelisms.empty()) {
    std::vector<QueryId> queries;
    if (have_query) {
      queries.push_back(id);
    } else {
      queries = {QueryId::kQ5, QueryId::kQ8, QueryId::kQ12, QueryId::kQ14,
                 QueryId::kQ17};
    }
    return xbench::bench::RunQueryParallelismBench(queries, parallelisms);
  }
  if (have_query) {
    return xbench::bench::RunQueryTableBench(id, PaperTableFor(id), profile);
  }
  for (QueryId each : {QueryId::kQ5, QueryId::kQ12, QueryId::kQ17,
                       QueryId::kQ8, QueryId::kQ14}) {
    const int rc =
        xbench::bench::RunQueryTableBench(each, PaperTableFor(each), profile);
    if (rc != 0) return rc;
  }
  return 0;
}
