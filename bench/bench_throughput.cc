// Extension beyond the paper: a multi-client throughput sweep. XBench's
// published tables are all single-stream response times; this binary runs
// N concurrent sessions (MPL 1/2/4/8/16) over a query mix against one
// shared engine and reports queries/sec and latency percentiles per MPL.
// Every concurrent statement's canonical answer hash is checked against a
// serial baseline on the same engine — any divergence makes the run fail
// with exit code 1, so the sweep doubles as a differential test of the
// thread-safe engine paths.
//
// Usage: bench_throughput [--engine NAME] [--class CLS] [--mpl 1,2,4]
//                         [--intra 1,4] [--ops N] [--slo-p99-millis X]
//   --engine  registry name: native (default), clob, shred-db2,
//             shred-mssql
//   --class   tcsd (default), tcmd, dcsd, dcmd
//   --mpl     comma-separated MPLs (default 1,2,4,8,16)
//   --intra   comma-separated intra-query parallelism bounds, crossed
//             with --mpl (default 1 = scalar execution) — contrasts
//             inter-query concurrency with morsel-driven parallelism
//   --ops     statements per session per MPL (default 8)
//   --slo-p99-millis  fail (exit 1) if any MPL's p99 latency exceeds X
// XBENCH_REPORT=<path> writes the machine-readable JSON report,
// XBENCH_TRACE_OUT=<path> dumps a Chrome trace with one lane per session,
// XBENCH_OPENMETRICS=<path> writes the metrics registry in OpenMetrics
// text exposition format.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engines/registry.h"
#include "harness/throughput.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/runner.h"

int main(int argc, char** argv) {
  using namespace xbench;
  harness::ThroughputOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--engine" && i + 1 < argc) {
      const std::string name = argv[++i];
      bool found = false;
      for (engines::EngineKind kind : workload::AllEngines()) {
        if (name == engines::EngineKindRegistryName(kind)) {
          options.engine = kind;
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr, "unknown engine '%s' (known:", name.c_str());
        for (const std::string& known :
             engines::EngineRegistry::Default().Names()) {
          std::fprintf(stderr, " %s", known.c_str());
        }
        std::fprintf(stderr, ")\n");
        return 2;
      }
    } else if (arg == "--class" && i + 1 < argc) {
      const std::string cls = argv[++i];
      if (cls == "tcsd") {
        options.db_class = datagen::DbClass::kTcSd;
      } else if (cls == "tcmd") {
        options.db_class = datagen::DbClass::kTcMd;
      } else if (cls == "dcsd") {
        options.db_class = datagen::DbClass::kDcSd;
      } else if (cls == "dcmd") {
        options.db_class = datagen::DbClass::kDcMd;
      } else {
        std::fprintf(stderr, "unknown class '%s' (tcsd|tcmd|dcsd|dcmd)\n",
                     cls.c_str());
        return 2;
      }
    } else if (arg == "--mpl" && i + 1 < argc) {
      options.mpls.clear();
      std::string list = argv[++i];
      size_t pos = 0;
      while (pos < list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string item =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        const int mpl = std::atoi(item.c_str());
        if (mpl <= 0) {
          std::fprintf(stderr, "bad --mpl entry '%s'\n", item.c_str());
          return 2;
        }
        options.mpls.push_back(mpl);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (options.mpls.empty()) {
        std::fprintf(stderr, "--mpl needs at least one value\n");
        return 2;
      }
    } else if (arg == "--intra" && i + 1 < argc) {
      options.intra.clear();
      std::string list = argv[++i];
      size_t pos = 0;
      while (pos < list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string item =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        const int intra = std::atoi(item.c_str());
        if (intra <= 0) {
          std::fprintf(stderr, "bad --intra entry '%s'\n", item.c_str());
          return 2;
        }
        options.intra.push_back(intra);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (options.intra.empty()) {
        std::fprintf(stderr, "--intra needs at least one value\n");
        return 2;
      }
    } else if (arg == "--ops" && i + 1 < argc) {
      options.ops_per_session = std::atoi(argv[++i]);
      if (options.ops_per_session < 1) {
        std::fprintf(stderr, "--ops must be positive\n");
        return 2;
      }
    } else if (arg == "--slo-p99-millis" && i + 1 < argc) {
      options.slo_p99_millis = std::atof(argv[++i]);
      if (options.slo_p99_millis <= 0) {
        std::fprintf(stderr, "--slo-p99-millis must be positive\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_throughput [--engine NAME] [--class CLS] "
                   "[--mpl 1,2,4] [--intra 1,4] [--ops N] "
                   "[--slo-p99-millis X]\n");
      return 2;
    }
  }

  obs::EnvTraceSession trace_session;

  std::printf(
      "XBench extension — multi-client throughput, engine=%s class=%s "
      "scale=%s, %d ops/session\n",
      engines::EngineKindRegistryName(options.engine),
      datagen::DbClassName(options.db_class), workload::ScaleName(options.scale),
      options.ops_per_session);

  harness::ThroughputDriver driver(options);
  auto run = driver.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "throughput run failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const harness::ThroughputReport& report = run.value();

  std::printf("%-5s %6s %8s %10s %9s %10s %10s %10s %10s %10s %9s\n", "MPL",
              "intra", "ops", "qps", "speedup", "mean-ms", "p50-ms", "p90-ms",
              "p99-ms", "p999-ms", "mismatch");
  for (const harness::MplResult& row : report.mpls) {
    std::printf(
        "%-5d %6d %8llu %10.1f %8.2fx %10.3f %10.3f %10.3f %10.3f %10.3f "
        "%9llu%s\n",
        row.mpl, row.intra, static_cast<unsigned long long>(row.ops), row.qps,
        row.intra == 1 ? report.SpeedupAt(row.mpl) : 0.0, row.mean_millis,
        row.p50_millis, row.p90_millis, row.p99_millis, row.p999_millis,
        static_cast<unsigned long long>(row.hash_mismatches),
        row.slo_ok ? "" : "  SLO-VIOLATION");
  }

  if (const char* report_path = std::getenv("XBENCH_REPORT")) {
    obs::JsonWriter writer;
    writer.BeginObject();
    writer.Key("benchmark").String("xbench_throughput");
    writer.Key("throughput");
    harness::WriteJson(report, writer);
    writer.Key("metrics");
    obs::MetricsRegistry::Default().WriteJson(writer);
    writer.EndObject();
    Status status = obs::WriteFile(report_path, writer.TakeString());
    if (!status.ok()) {
      std::fprintf(stderr, "report write failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("report written to %s\n", report_path);
  }

  if (const char* metrics_path = std::getenv("XBENCH_OPENMETRICS")) {
    Status status =
        obs::WriteOpenMetrics(obs::MetricsRegistry::Default(), metrics_path);
    if (!status.ok()) {
      std::fprintf(stderr, "openmetrics write failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("openmetrics written to %s\n", metrics_path);
  }

  if (!report.AllAnswersMatchSerial()) {
    std::fprintf(stderr,
                 "FAIL: concurrent answers diverged from the serial "
                 "baseline\n");
    return 1;
  }
  std::printf("all concurrent answers match the serial baseline\n");
  if (!report.SloSatisfied()) {
    std::fprintf(stderr, "FAIL: p99 latency exceeded the %.3fms SLO\n",
                 report.slo_p99_millis);
    return 1;
  }
  if (report.slo_p99_millis > 0) {
    std::printf("p99 latency within the %.3fms SLO at every MPL\n",
                report.slo_p99_millis);
  }
  return 0;
}
