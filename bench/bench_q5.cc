// Reproduces paper Table 5: query Q5 (ordered access, absolute) execution
// time across engines, classes, and scales.
#include "bench_common.h"

int main() {
  return xbench::bench::RunQueryTableBench(xbench::workload::QueryId::kQ5,
                                           "Table 5");
}
