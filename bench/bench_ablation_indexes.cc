// Reproduces the unreported half of the paper's methodology (§3.1): "We
// measure two times for each query: with no indexes (i.e., sequential
// scan) to form a baseline, and with indexes. We only report ... times
// with indexes." This bench prints both, at the normal scale, for the
// index-sensitive queries — the ablation behind the paper's claim that
// indexing "does not make a big difference for small databases, but
// starts to take positive effects when the databases get larger".
#include <cstdio>

#include "datagen/generator.h"
#include "harness/scale.h"
#include "workload/classes.h"
#include "workload/runner.h"

int main() {
  using namespace xbench;
  std::printf(
      "XBench reproduction — index ablation (paper §3.1 baseline), normal "
      "scale\n\n");
  std::printf("%-6s %-7s %-16s %12s %12s %9s\n", "Query", "Class", "Engine",
              "no-index ms", "indexed ms", "speedup");

  for (workload::QueryId id :
       {workload::QueryId::kQ5, workload::QueryId::kQ8,
        workload::QueryId::kQ12}) {
    for (datagen::DbClass cls : workload::AllClasses()) {
      datagen::GenConfig config;
      config.target_bytes = harness::TargetBytes(workload::Scale::kNormal);
      config.seed = harness::BenchSeed();
      datagen::GeneratedDatabase db = datagen::Generate(cls, config);
      const workload::QueryParams params =
          workload::DeriveParams(cls, db.seeds);

      for (engines::EngineKind kind : workload::AllEngines()) {
        auto bare = workload::MakeEngine(kind);
        if (!bare->BulkLoad(cls, workload::ToLoadDocuments(db)).ok()) {
          continue;  // unsupported cell
        }
        auto no_index = workload::RunQuery(*bare, id, cls, params);

        auto indexed_engine = workload::MakeEngine(kind);
        (void)indexed_engine->BulkLoad(cls, workload::ToLoadDocuments(db));
        (void)workload::CreateTable3Indexes(*indexed_engine, cls);
        auto indexed = workload::RunQuery(*indexed_engine, id, cls, params);

        if (!no_index.status.ok() || !indexed.status.ok()) continue;
        const double speedup =
            indexed.TotalMillis() <= 0
                ? 0
                : no_index.TotalMillis() / indexed.TotalMillis();
        std::printf("%-6s %-7s %-16s %12.1f %12.1f %8.1fx\n",
                    workload::QueryName(id), datagen::DbClassName(cls),
                    engines::EngineKindName(kind), no_index.TotalMillis(),
                    indexed.TotalMillis(), speedup);
      }
    }
  }
  return 0;
}
