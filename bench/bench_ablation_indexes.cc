// Reproduces the unreported half of the paper's methodology (§3.1): "We
// measure two times for each query: with no indexes (i.e., sequential
// scan) to form a baseline, and with indexes. We only report ... times
// with indexes." This bench drives the compiled pipeline on the native
// engine and measures three access-path policies per index-sensitive
// query — ForceScan (the no-index baseline), ForceIndex, and Auto (the
// cost-based planner) — cold, best-of-3, with an answer-hash gate
// proving all three return byte-identical results. `auto_ok` records
// whether the cost-based choice lands within 15% of the best forced
// policy. The machine-readable artifact goes to XBENCH_REPORT, default
// BENCH_query_indexes.json in the working directory.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "harness/scale.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "workload/classes.h"
#include "workload/runner.h"
#include "workload/session.h"

namespace {

using namespace xbench;

struct Policy {
  const char* label;
  xquery::plan::AccessPathMode mode;
};

struct Cell {
  double best_millis = 0;
  std::string access_path;
  uint64_t answer_hash = 0;
  bool ok = false;
};

/// Table 3 value/path indexes for the class (names the schema lacks come
/// back kNotFound and are skipped, matching the harness loader) plus the
/// collection-wide text index Q17's contains-word probe needs.
bool CreateIndexes(workload::Session& session, datagen::DbClass db_class) {
  for (const engines::IndexSpec& spec : workload::Table3Indexes(db_class)) {
    Status status = session.CreateIndex(spec);
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "CreateIndex(%s) failed: %s\n", spec.name.c_str(),
                   status.ToString().c_str());
      return false;
    }
  }
  engines::IndexSpec text;
  text.name = "words";
  text.kind = engines::IndexKind::kText;
  Status status = session.CreateIndex(text);
  if (!status.ok()) {
    std::fprintf(stderr, "CreateIndex(words) failed: %s\n",
                 status.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main() {
  const Policy kPolicies[] = {
      {"scan", xquery::plan::AccessPathMode::kForceScan},
      {"index", xquery::plan::AccessPathMode::kForceIndex},
      {"auto", xquery::plan::AccessPathMode::kAuto},
  };
  constexpr int kRepeats = 3;  // best-of, cold each run (paper §3.1)
  constexpr double kAutoSlack = 1.15;

  std::printf(
      "XBench reproduction — index ablation (paper §3.1 baseline), native "
      "engine, normal scale, cold best-of-%d\n\n",
      kRepeats);
  std::printf("%-6s %-7s %11s %11s %11s %9s %8s  %s\n", "Query", "Class",
              "scan ms", "index ms", "auto ms", "speedup", "auto-ok",
              "auto access path");

  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("benchmark").String("xbench_query_indexes");
  writer.Key("engine").String("native");
  writer.Key("scale").String("normal");
  writer.Key("repeats").Uint(kRepeats);
  writer.Key("auto_slack").Number(kAutoSlack);
  writer.Key("queries").BeginArray();

  int failures = 0;
  int auto_ok_cells = 0;
  int cells = 0;
  for (workload::QueryId id :
       {workload::QueryId::kQ5, workload::QueryId::kQ8,
        workload::QueryId::kQ12, workload::QueryId::kQ14,
        workload::QueryId::kQ17}) {
    for (datagen::DbClass cls : workload::AllClasses()) {
      datagen::GenConfig config;
      config.target_bytes = harness::TargetBytes(workload::Scale::kNormal);
      config.seed = harness::BenchSeed();
      datagen::GeneratedDatabase db = datagen::Generate(cls, config);
      auto engine = workload::MakeEngine(engines::EngineKind::kNative);
      if (!engine->BulkLoad(cls, workload::ToLoadDocuments(db)).ok()) {
        continue;  // unsupported cell
      }
      workload::Session session(*engine, cls,
                                workload::DeriveParams(cls, db.seeds),
                                "ablation");
      if (!CreateIndexes(session, cls)) return 1;

      Cell results[3];
      bool supported = true;
      for (size_t pi = 0; pi < 3 && supported; ++pi) {
        workload::RunOptions options;
        options.cold = true;
        options.compile.access_path.mode = kPolicies[pi].mode;
        Cell& cell = results[pi];
        for (int rep = 0; rep < kRepeats; ++rep) {
          workload::ExecutionResult result = session.Run(id, options);
          if (!result.status.ok()) {
            supported = false;  // query not in this class's canned set
            break;
          }
          const double millis = result.TotalMillis();
          if (rep == 0 || millis < cell.best_millis) {
            cell.best_millis = millis;
          }
          cell.access_path = result.access_path;
          cell.answer_hash = workload::AnswerHash(
              workload::CanonicalizeAnswer(id, std::move(result.lines)));
          cell.ok = true;
        }
      }
      if (!supported) continue;

      const bool answers_match =
          results[0].answer_hash == results[1].answer_hash &&
          results[0].answer_hash == results[2].answer_hash;
      if (!answers_match) ++failures;
      const double best_forced =
          std::min(results[0].best_millis, results[1].best_millis);
      const bool auto_ok =
          results[2].best_millis <= kAutoSlack * best_forced;
      const double speedup = results[1].best_millis > 0
                                 ? results[0].best_millis /
                                       results[1].best_millis
                                 : 0.0;
      ++cells;
      if (auto_ok) ++auto_ok_cells;

      std::printf("%-6s %-7s %11.1f %11.1f %11.1f %8.1fx %8s  %s%s\n",
                  workload::QueryName(id), datagen::DbClassName(cls),
                  results[0].best_millis, results[1].best_millis,
                  results[2].best_millis, speedup, auto_ok ? "yes" : "NO",
                  results[2].access_path.c_str(),
                  answers_match ? "" : "  ANSWER-MISMATCH");

      writer.BeginObject();
      writer.Key("query").String(workload::QueryName(id));
      writer.Key("class").String(datagen::DbClassName(cls));
      writer.Key("answers_match").Bool(answers_match);
      writer.Key("speedup").Number(speedup);
      writer.Key("auto_ok").Bool(auto_ok);
      writer.Key("runs").BeginArray();
      for (size_t pi = 0; pi < 3; ++pi) {
        writer.BeginObject()
            .Key("policy")
            .String(kPolicies[pi].label)
            .Key("best_millis")
            .Number(results[pi].best_millis)
            .Key("access_path")
            .String(results[pi].access_path)
            .EndObject();
      }
      writer.EndArray();
      writer.EndObject();
    }
  }
  writer.EndArray();
  writer.Key("cells").Uint(static_cast<uint64_t>(cells));
  writer.Key("auto_ok_cells").Uint(static_cast<uint64_t>(auto_ok_cells));
  writer.Key("metrics");
  obs::MetricsRegistry::Default().WriteJson(writer);
  writer.EndObject();

  const char* report_path = std::getenv("XBENCH_REPORT");
  if (report_path == nullptr) report_path = "BENCH_query_indexes.json";
  Status status = obs::WriteFile(report_path, writer.TakeString());
  if (!status.ok()) {
    std::fprintf(stderr, "report write failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\n%d/%d cells auto-ok, report written to %s\n", auto_ok_cells,
              cells, report_path);
  return failures == 0 ? 0 : 1;
}
