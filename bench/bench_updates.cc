// Extension bench — the paper's planned update workload (§4): document
// insertion and deletion throughput per engine on the MD classes, with
// Table 3 indexes maintained. Not a paper table; reported as ops/s.
#include <cstdio>

#include "datagen/generator.h"
#include "harness/scale.h"
#include "workload/classes.h"
#include "workload/runner.h"
#include "xml/serializer.h"

int main() {
  using namespace xbench;
  std::printf(
      "XBench reproduction — update workload extension (document "
      "insert/delete,\nindexes maintained; MD classes, small scale)\n\n");
  std::printf("%-16s %-7s %14s %14s\n", "Engine", "Class", "insert ops/s",
              "delete ops/s");

  for (datagen::DbClass cls :
       {datagen::DbClass::kDcMd, datagen::DbClass::kTcMd}) {
    datagen::GenConfig config;
    config.target_bytes = harness::TargetBytes(workload::Scale::kSmall);
    config.seed = harness::BenchSeed();
    datagen::GeneratedDatabase db = datagen::Generate(cls, config);

    // A batch of fresh documents to insert: regenerate the class at a
    // different seed and rename to avoid collisions.
    datagen::GenConfig extra_config = config;
    extra_config.seed = config.seed + 1;
    extra_config.target_bytes = config.target_bytes / 4;
    datagen::GeneratedDatabase extra = datagen::Generate(cls, extra_config);

    for (engines::EngineKind kind : workload::AllEngines()) {
      auto engine = workload::MakeEngine(kind);
      Status status = engine->BulkLoad(cls, workload::ToLoadDocuments(db));
      if (!status.ok()) {
        std::printf("%-16s %-7s %14s %14s\n",
                    engines::EngineKindName(kind), datagen::DbClassName(cls),
                    "-", "-");
        continue;
      }
      (void)workload::CreateTable3Indexes(*engine, cls);

      const double io0 = engine->IoMillis();
      Stopwatch watch;
      int inserted = 0;
      for (const datagen::GeneratedDocument& doc : extra.documents) {
        engines::LoadDocument load{"new_" + doc.name, doc.text};
        if (engine->InsertDocument(load).ok()) ++inserted;
      }
      const double insert_ms =
          watch.ElapsedMillis() + (engine->IoMillis() - io0);

      const double io1 = engine->IoMillis();
      watch.Restart();
      int deleted = 0;
      for (const datagen::GeneratedDocument& doc : extra.documents) {
        if (engine->DeleteDocument("new_" + doc.name).ok()) ++deleted;
      }
      const double delete_ms =
          watch.ElapsedMillis() + (engine->IoMillis() - io1);

      auto rate = [](int ops, double ms) {
        return ms <= 0 ? 0.0 : 1000.0 * ops / ms;
      };
      std::printf("%-16s %-7s %14.0f %14.0f\n",
                  engines::EngineKindName(kind), datagen::DbClassName(cls),
                  rate(inserted, insert_ms), rate(deleted, delete_ms));
    }
  }
  return 0;
}
