// Extension beyond the paper's reported subset: the full 20-query XBench
// workload (§2.2) executed on every engine for every class at the small
// scale (the paper defines all 20 query types but reports only Q5, Q8,
// Q12, Q14 and Q17). Cells show "time-ms/result-count"; '-' marks cells
// where the query is undefined for the class or architecturally
// unsupported by the engine (e.g. Q4 on shredded storage).
//
// --repeat N runs every cell N times (cold each time) and reports the last
// run: repeats hit the native engine's compiled-plan cache (which survives
// cold restarts, like a statement cache), so the xbench.plan.* counters
// printed at the end show the win — compiles stay at one per native cell
// while executions grow N-fold.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "datagen/generator.h"
#include "harness/scale.h"
#include "obs/metrics.h"
#include "workload/classes.h"
#include "workload/runner.h"
#include "workload/session.h"

int main(int argc, char** argv) {
  using namespace xbench;
  int repeat = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--repeat" && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) repeat = 1;
    } else {
      std::fprintf(stderr, "usage: bench_full_workload [--repeat N]\n");
      return 2;
    }
  }
  std::printf(
      "XBench reproduction — full 20-query workload, all engines, small "
      "scale (cold)\ncells: total-ms/result-count, '-' = undefined or "
      "unsupported\n");
  if (repeat > 1) std::printf("repeats per cell: %d\n", repeat);

  for (datagen::DbClass cls : workload::AllClasses()) {
    datagen::GenConfig config;
    config.target_bytes = harness::TargetBytes(workload::Scale::kSmall);
    config.seed = harness::BenchSeed();
    datagen::GeneratedDatabase db = datagen::Generate(cls, config);
    const workload::QueryParams params =
        workload::DeriveParams(cls, db.seeds);

    struct Loaded {
      engines::EngineKind kind;
      std::unique_ptr<engines::XmlDbms> engine;
      std::unique_ptr<workload::Session> session;
      bool ok;
    };
    std::vector<Loaded> engines_loaded;
    for (engines::EngineKind kind : workload::AllEngines()) {
      Loaded loaded;
      loaded.kind = kind;
      loaded.engine = workload::MakeEngine(kind);
      loaded.ok =
          loaded.engine->BulkLoad(cls, workload::ToLoadDocuments(db)).ok();
      if (loaded.ok) {
        (void)workload::CreateTable3Indexes(*loaded.engine, cls);
        loaded.session = std::make_unique<workload::Session>(
            *loaded.engine, cls, params,
            std::string(engines::EngineKindName(kind)));
      }
      engines_loaded.push_back(std::move(loaded));
    }

    std::printf("\n== %s ==\n%-5s %-22s", datagen::DbClassName(cls), "Query",
                "Category");
    for (const Loaded& loaded : engines_loaded) {
      std::printf(" %14.14s", engines::EngineKindName(loaded.kind));
    }
    std::printf("\n");

    for (int q = 0; q < 20; ++q) {
      const auto id = static_cast<workload::QueryId>(q);
      if (workload::XQueryFor(id, cls, params).empty()) continue;
      std::printf("%-5s %-22s", workload::QueryName(id),
                  workload::QueryCategory(id));
      for (const Loaded& loaded : engines_loaded) {
        if (!loaded.ok) {
          std::printf(" %14s", "-");
          continue;
        }
        workload::ExecutionResult result;
        for (int r = 0; r < repeat; ++r) {
          result = loaded.session->Run(id);
          if (!result.status.ok()) break;
        }
        if (!result.status.ok()) {
          std::printf(" %14s", "-");
          continue;
        }
        char cell[32];
        std::snprintf(cell, sizeof(cell), "%.1f/%zu", result.TotalMillis(),
                      result.lines.size());
        std::printf(" %14s", cell);
      }
      std::printf("\n");
    }
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  std::printf(
      "\nplan cache: %llu compiles, %llu hits, %llu misses, %llu "
      "executions\n",
      static_cast<unsigned long long>(
          metrics.GetCounter("xbench.plan.compiles").value()),
      static_cast<unsigned long long>(
          metrics.GetCounter("xbench.plan.cache_hits").value()),
      static_cast<unsigned long long>(
          metrics.GetCounter("xbench.plan.cache_misses").value()),
      static_cast<unsigned long long>(
          metrics.GetCounter("xbench.plan.executions").value()));
  return 0;
}
