// Extension beyond the paper's reported subset: the full 20-query XBench
// workload (§2.2) executed on every engine for every class at the small
// scale (the paper defines all 20 query types but reports only Q5, Q8,
// Q12, Q14 and Q17). Cells show "time-ms/result-count"; '-' marks cells
// where the query is undefined for the class or architecturally
// unsupported by the engine (e.g. Q4 on shredded storage).
#include <cstdio>

#include "datagen/generator.h"
#include "harness/scale.h"
#include "workload/classes.h"
#include "workload/runner.h"

int main() {
  using namespace xbench;
  std::printf(
      "XBench reproduction — full 20-query workload, all engines, small "
      "scale (cold)\ncells: total-ms/result-count, '-' = undefined or "
      "unsupported\n");

  for (datagen::DbClass cls : workload::AllClasses()) {
    datagen::GenConfig config;
    config.target_bytes = harness::TargetBytes(workload::Scale::kSmall);
    config.seed = harness::BenchSeed();
    datagen::GeneratedDatabase db = datagen::Generate(cls, config);
    const workload::QueryParams params =
        workload::DeriveParams(cls, db.seeds);

    struct Loaded {
      engines::EngineKind kind;
      std::unique_ptr<engines::XmlDbms> engine;
      bool ok;
    };
    std::vector<Loaded> engines_loaded;
    for (engines::EngineKind kind : workload::AllEngines()) {
      Loaded loaded;
      loaded.kind = kind;
      loaded.engine = workload::MakeEngine(kind);
      loaded.ok =
          loaded.engine->BulkLoad(cls, workload::ToLoadDocuments(db)).ok();
      if (loaded.ok) {
        (void)workload::CreateTable3Indexes(*loaded.engine, cls);
      }
      engines_loaded.push_back(std::move(loaded));
    }

    std::printf("\n== %s ==\n%-5s %-22s", datagen::DbClassName(cls), "Query",
                "Category");
    for (const Loaded& loaded : engines_loaded) {
      std::printf(" %14.14s", engines::EngineKindName(loaded.kind));
    }
    std::printf("\n");

    for (int q = 0; q < 20; ++q) {
      const auto id = static_cast<workload::QueryId>(q);
      if (workload::XQueryFor(id, cls, params).empty()) continue;
      std::printf("%-5s %-22s", workload::QueryName(id),
                  workload::QueryCategory(id));
      for (const Loaded& loaded : engines_loaded) {
        if (!loaded.ok) {
          std::printf(" %14s", "-");
          continue;
        }
        workload::ExecutionResult result =
            workload::RunQuery(*loaded.engine, id, cls, params);
        if (!result.status.ok()) {
          std::printf(" %14s", "-");
          continue;
        }
        char cell[32];
        std::snprintf(cell, sizeof(cell), "%.1f/%zu", result.TotalMillis(),
                      result.lines.size());
        std::printf(" %14s", cell);
      }
      std::printf("\n");
    }
  }
  return 0;
}
