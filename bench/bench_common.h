#ifndef XBENCH_BENCH_BENCH_COMMON_H_
#define XBENCH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>

#include "harness/driver.h"
#include "obs/trace.h"

namespace xbench::bench {

/// Prints one of the paper's query tables (Tables 5-9). Honors the
/// observability env hooks: XBENCH_TRACE=<path> dumps a Chrome trace of
/// the run, XBENCH_REPORT=<path> writes the machine-readable JSON report
/// for this query.
inline int RunQueryTableBench(workload::QueryId id, const char* paper_table) {
  obs::EnvTraceSession trace_session;
  harness::Driver driver;
  std::printf("XBench reproduction — %s (paper %s)\n",
              workload::QueryName(id), paper_table);
  std::printf("scales: small=%lluKB normal=%lluKB large=%lluKB, seed=%llu\n",
              static_cast<unsigned long long>(
                  harness::TargetBytes(workload::Scale::kSmall) / 1024),
              static_cast<unsigned long long>(
                  harness::TargetBytes(workload::Scale::kNormal) / 1024),
              static_cast<unsigned long long>(
                  harness::TargetBytes(workload::Scale::kLarge) / 1024),
              static_cast<unsigned long long>(harness::BenchSeed()));
  harness::ResultTable table = driver.QueryTable(id);
  std::fputs(table.ToString().c_str(), stdout);
  if (const char* report_path = std::getenv("XBENCH_REPORT")) {
    harness::Driver::ReportOptions options;
    options.queries = {id};
    Status status = driver.WriteJsonReport(report_path, options);
    if (!status.ok()) {
      std::fprintf(stderr, "report write failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("report written to %s\n", report_path);
  }
  return 0;
}

}  // namespace xbench::bench

#endif  // XBENCH_BENCH_BENCH_COMMON_H_
