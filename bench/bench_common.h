#ifndef XBENCH_BENCH_BENCH_COMMON_H_
#define XBENCH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/driver.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/classes.h"
#include "workload/session.h"

namespace xbench::bench {

/// With --profile: runs `id` once more on the native engine (first class
/// that supports it, small scale) with phase/operator profiling and
/// prints an EXPLAIN ANALYZE-style breakdown.
inline void PrintQueryProfile(harness::Driver& driver, workload::QueryId id) {
  for (datagen::DbClass db_class : workload::AllClasses()) {
    harness::Driver::LoadedEngine& loaded = driver.Loaded(
        engines::EngineKind::kNative, db_class, workload::Scale::kSmall);
    if (!loaded.load_status.ok()) continue;
    const datagen::GeneratedDatabase& db =
        driver.Database(db_class, workload::Scale::kSmall);
    workload::Session session(*loaded.engine, db_class,
                              workload::DeriveParams(db_class, db.seeds),
                              "profile");
    workload::RunOptions options;
    options.profile = true;
    workload::ExecutionResult result = session.Run(id, options);
    if (!result.status.ok()) continue;
    const workload::QueryProfile& profile = result.profile;
    std::printf("\nprofile: %s on native/%s (small)\n",
                workload::QueryName(id), datagen::DbClassName(db_class));
    std::printf(
        "  phases: parse=%.3fms analyze=%.3fms plan=%.3fms%s "
        "engine=%.3fms exec=%.3fms serialize=%.3fms\n",
        profile.parse_millis, profile.analyze_millis, profile.plan_millis,
        profile.compile_cache_hit ? " (cache hit)" : "",
        profile.engine_millis, profile.exec_millis,
        profile.serialize_millis);
    std::printf("  %-44s %10s %8s %10s %10s\n", "operator", "rows", "calls",
                "millis", "self_ms");
    for (const xquery::exec::OperatorStats& op :
         result.plan_stats.operators) {
      std::string label(static_cast<size_t>(op.depth) * 2, ' ');
      label += op.label;
      std::printf("  %-44s %10llu %8llu %10.3f %10.3f\n", label.c_str(),
                  static_cast<unsigned long long>(op.rows_out),
                  static_cast<unsigned long long>(op.invocations), op.millis,
                  op.self_millis);
    }
    return;
  }
  std::fprintf(stderr, "profile: %s is not supported by the native engine\n",
               workload::QueryName(id));
}

/// Intra-query parallelism sweep (extension beyond the paper): runs each
/// query on the native engine (first class that supports it, small
/// scale, warm) once per parallelism bound and reports the modeled
/// execution wall time per bound. Parallelism 1 reports the measured
/// operator-tree time; N > 1 reports ExecStats::modeled_total_millis —
/// the run's wall time with each morsel region's measured all-lane CPU
/// replaced by its list-scheduled makespan on N lanes, so the sweep is
/// meaningful on hosts with fewer free cores than lanes. Answers are
/// checked identical across bounds. XBENCH_REPORT=<path> writes the
/// machine-readable JSON artifact.
inline int RunQueryParallelismBench(
    const std::vector<workload::QueryId>& queries,
    const std::vector<int>& parallelisms) {
  obs::EnvTraceSession trace_session;
  harness::Driver driver;
  std::printf(
      "XBench extension — intra-query parallelism sweep "
      "(native engine, small scale, modeled exec millis)\n");
  std::printf("%-6s %-6s", "query", "class");
  for (int p : parallelisms) std::printf(" %9s", ("x" + std::to_string(p)).c_str());
  std::printf(" %9s\n", "speedup");

  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("benchmark").String("xbench_query_parallelism");
  writer.Key("engine").String("native");
  writer.Key("scale").String("small");
  writer.Key("parallelism").BeginArray();
  for (int p : parallelisms) writer.Uint(static_cast<uint64_t>(p));
  writer.EndArray();
  writer.Key("queries").BeginArray();

  constexpr int kRepeats = 3;  // best-of, to damp scheduler noise
  int failures = 0;
  for (workload::QueryId id : queries) {
    bool ran = false;
    for (datagen::DbClass db_class : workload::AllClasses()) {
      harness::Driver::LoadedEngine& loaded = driver.Loaded(
          engines::EngineKind::kNative, db_class, workload::Scale::kSmall);
      if (!loaded.load_status.ok()) continue;
      const datagen::GeneratedDatabase& db =
          driver.Database(db_class, workload::Scale::kSmall);
      workload::Session session(*loaded.engine, db_class,
                                workload::DeriveParams(db_class, db.seeds),
                                "parallelism");
      struct Point {
        int parallelism = 1;
        double modeled_millis = 0;
        double busy_millis = 0;
        uint64_t morsels = 0;
      };
      std::vector<Point> points;
      uint64_t baseline_hash = 0;
      bool mismatch = false;
      bool failed = false;
      for (int p : parallelisms) {
        workload::RunOptions options;
        options.cold = false;  // warm: isolate execution, not the pool
        options.compile.parallelism.max_intra = p;
        Point point;
        point.parallelism = p;
        for (int rep = 0; rep < kRepeats; ++rep) {
          workload::ExecutionResult result = session.Run(id, options);
          if (!result.status.ok()) {
            failed = true;
            break;
          }
          const uint64_t hash = workload::AnswerHash(
              workload::CanonicalizeAnswer(id, std::move(result.lines)));
          if (p == parallelisms.front() && rep == 0) baseline_hash = hash;
          if (hash != baseline_hash) mismatch = true;
          const double modeled = result.plan_stats.modeled_total_millis;
          if (rep == 0 || modeled < point.modeled_millis) {
            point.modeled_millis = modeled;
            point.busy_millis = result.plan_stats.parallel_busy_millis;
            point.morsels = 0;
            for (const xquery::exec::OperatorStats& op :
                 result.plan_stats.operators) {
              point.morsels += op.morsels;
            }
          }
        }
        if (failed) break;
        points.push_back(point);
      }
      if (failed || points.empty()) continue;
      ran = true;
      const double base = points.front().modeled_millis;
      const double last = points.back().modeled_millis;
      std::printf("%-6s %-6s", workload::QueryName(id),
                  datagen::DbClassName(db_class));
      for (const Point& point : points) {
        std::printf(" %9.3f", point.modeled_millis);
      }
      std::printf(" %8.2fx%s\n", last > 0 ? base / last : 0.0,
                  mismatch ? "  ANSWER-MISMATCH" : "");
      if (mismatch) ++failures;
      writer.BeginObject();
      writer.Key("query").String(workload::QueryName(id));
      writer.Key("class").String(datagen::DbClassName(db_class));
      writer.Key("answers_match").Bool(!mismatch);
      writer.Key("runs").BeginArray();
      for (const Point& point : points) {
        writer.BeginObject()
            .Key("parallelism")
            .Uint(static_cast<uint64_t>(point.parallelism))
            .Key("modeled_exec_millis")
            .Number(point.modeled_millis)
            .Key("parallel_busy_millis")
            .Number(point.busy_millis)
            .Key("morsels")
            .Uint(point.morsels)
            .Key("speedup")
            .Number(point.modeled_millis > 0 ? base / point.modeled_millis
                                             : 0.0)
            .EndObject();
      }
      writer.EndArray();
      writer.EndObject();
      break;
    }
    if (!ran) {
      std::fprintf(stderr, "%s is not supported by the native engine\n",
                   workload::QueryName(id));
    }
  }
  writer.EndArray();
  writer.Key("metrics");
  obs::MetricsRegistry::Default().WriteJson(writer);
  writer.EndObject();

  if (const char* report_path = std::getenv("XBENCH_REPORT")) {
    Status status = obs::WriteFile(report_path, writer.TakeString());
    if (!status.ok()) {
      std::fprintf(stderr, "report write failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("report written to %s\n", report_path);
  }
  return failures == 0 ? 0 : 1;
}

/// Prints one of the paper's query tables (Tables 5-9). Honors the
/// observability env hooks: XBENCH_TRACE_OUT=<path> (or legacy
/// XBENCH_TRACE) dumps a Chrome trace of the run, XBENCH_REPORT=<path>
/// writes the machine-readable JSON report for this query. `profile`
/// additionally runs one profiled native execution (printed) and embeds
/// phase/operator profiles in the report.
inline int RunQueryTableBench(workload::QueryId id, const char* paper_table,
                              bool profile = false) {
  obs::EnvTraceSession trace_session;
  harness::Driver driver;
  std::printf("XBench reproduction — %s (paper %s)\n",
              workload::QueryName(id), paper_table);
  std::printf("scales: small=%lluKB normal=%lluKB large=%lluKB, seed=%llu\n",
              static_cast<unsigned long long>(
                  harness::TargetBytes(workload::Scale::kSmall) / 1024),
              static_cast<unsigned long long>(
                  harness::TargetBytes(workload::Scale::kNormal) / 1024),
              static_cast<unsigned long long>(
                  harness::TargetBytes(workload::Scale::kLarge) / 1024),
              static_cast<unsigned long long>(harness::BenchSeed()));
  harness::ResultTable table = driver.QueryTable(id);
  std::fputs(table.ToString().c_str(), stdout);
  if (profile) PrintQueryProfile(driver, id);
  if (const char* report_path = std::getenv("XBENCH_REPORT")) {
    harness::Driver::ReportOptions options;
    options.queries = {id};
    options.profile = profile;
    Status status = driver.WriteJsonReport(report_path, options);
    if (!status.ok()) {
      std::fprintf(stderr, "report write failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("report written to %s\n", report_path);
  }
  return 0;
}

}  // namespace xbench::bench

#endif  // XBENCH_BENCH_BENCH_COMMON_H_
