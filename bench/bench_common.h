#ifndef XBENCH_BENCH_BENCH_COMMON_H_
#define XBENCH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/driver.h"
#include "obs/trace.h"
#include "workload/classes.h"
#include "workload/session.h"

namespace xbench::bench {

/// With --profile: runs `id` once more on the native engine (first class
/// that supports it, small scale) with phase/operator profiling and
/// prints an EXPLAIN ANALYZE-style breakdown.
inline void PrintQueryProfile(harness::Driver& driver, workload::QueryId id) {
  for (datagen::DbClass db_class : workload::AllClasses()) {
    harness::Driver::LoadedEngine& loaded = driver.Loaded(
        engines::EngineKind::kNative, db_class, workload::Scale::kSmall);
    if (!loaded.load_status.ok()) continue;
    const datagen::GeneratedDatabase& db =
        driver.Database(db_class, workload::Scale::kSmall);
    workload::Session session(*loaded.engine, db_class,
                              workload::DeriveParams(db_class, db.seeds),
                              "profile");
    workload::RunOptions options;
    options.profile = true;
    workload::ExecutionResult result = session.Run(id, options);
    if (!result.status.ok()) continue;
    const workload::QueryProfile& profile = result.profile;
    std::printf("\nprofile: %s on native/%s (small)\n",
                workload::QueryName(id), datagen::DbClassName(db_class));
    std::printf(
        "  phases: parse=%.3fms analyze=%.3fms plan=%.3fms%s "
        "engine=%.3fms exec=%.3fms serialize=%.3fms\n",
        profile.parse_millis, profile.analyze_millis, profile.plan_millis,
        profile.compile_cache_hit ? " (cache hit)" : "",
        profile.engine_millis, profile.exec_millis,
        profile.serialize_millis);
    std::printf("  %-44s %10s %8s %10s %10s\n", "operator", "rows", "calls",
                "millis", "self_ms");
    for (const xquery::exec::OperatorStats& op :
         result.plan_stats.operators) {
      std::string label(static_cast<size_t>(op.depth) * 2, ' ');
      label += op.label;
      std::printf("  %-44s %10llu %8llu %10.3f %10.3f\n", label.c_str(),
                  static_cast<unsigned long long>(op.rows_out),
                  static_cast<unsigned long long>(op.invocations), op.millis,
                  op.self_millis);
    }
    return;
  }
  std::fprintf(stderr, "profile: %s is not supported by the native engine\n",
               workload::QueryName(id));
}

/// Prints one of the paper's query tables (Tables 5-9). Honors the
/// observability env hooks: XBENCH_TRACE_OUT=<path> (or legacy
/// XBENCH_TRACE) dumps a Chrome trace of the run, XBENCH_REPORT=<path>
/// writes the machine-readable JSON report for this query. `profile`
/// additionally runs one profiled native execution (printed) and embeds
/// phase/operator profiles in the report.
inline int RunQueryTableBench(workload::QueryId id, const char* paper_table,
                              bool profile = false) {
  obs::EnvTraceSession trace_session;
  harness::Driver driver;
  std::printf("XBench reproduction — %s (paper %s)\n",
              workload::QueryName(id), paper_table);
  std::printf("scales: small=%lluKB normal=%lluKB large=%lluKB, seed=%llu\n",
              static_cast<unsigned long long>(
                  harness::TargetBytes(workload::Scale::kSmall) / 1024),
              static_cast<unsigned long long>(
                  harness::TargetBytes(workload::Scale::kNormal) / 1024),
              static_cast<unsigned long long>(
                  harness::TargetBytes(workload::Scale::kLarge) / 1024),
              static_cast<unsigned long long>(harness::BenchSeed()));
  harness::ResultTable table = driver.QueryTable(id);
  std::fputs(table.ToString().c_str(), stdout);
  if (profile) PrintQueryProfile(driver, id);
  if (const char* report_path = std::getenv("XBENCH_REPORT")) {
    harness::Driver::ReportOptions options;
    options.queries = {id};
    options.profile = profile;
    Status status = driver.WriteJsonReport(report_path, options);
    if (!status.ok()) {
      std::fprintf(stderr, "report write failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("report written to %s\n", report_path);
  }
  return 0;
}

}  // namespace xbench::bench

#endif  // XBENCH_BENCH_BENCH_COMMON_H_
