#ifndef XBENCH_BENCH_BENCH_COMMON_H_
#define XBENCH_BENCH_BENCH_COMMON_H_

#include <cstdio>

#include "harness/driver.h"

namespace xbench::bench {

/// Prints one of the paper's query tables (Tables 5-9).
inline int RunQueryTableBench(workload::QueryId id, const char* paper_table) {
  harness::Driver driver;
  std::printf("XBench reproduction — %s (paper %s)\n",
              workload::QueryName(id), paper_table);
  std::printf("scales: small=%lluKB normal=%lluKB large=%lluKB, seed=%llu\n",
              static_cast<unsigned long long>(
                  harness::TargetBytes(workload::Scale::kSmall) / 1024),
              static_cast<unsigned long long>(
                  harness::TargetBytes(workload::Scale::kNormal) / 1024),
              static_cast<unsigned long long>(
                  harness::TargetBytes(workload::Scale::kLarge) / 1024),
              static_cast<unsigned long long>(harness::BenchSeed()));
  harness::ResultTable table = driver.QueryTable(id);
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace xbench::bench

#endif  // XBENCH_BENCH_BENCH_COMMON_H_
