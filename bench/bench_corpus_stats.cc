// Reproduces paper Table 2 ("Analyzed TC Class Data") over our generated
// corpora: the original Reuters/Springer/GCIDE/OED corpora are proprietary,
// so we run the same analysis on the synthetic stand-ins (DESIGN.md
// documents this substitution) and additionally report the structural
// statistics (§2.1.1) that drive the generators.
#include <cstdio>

#include "datagen/generator.h"
#include "harness/scale.h"
#include "stats/corpus_analyzer.h"
#include "stats/fitting.h"
#include "workload/classes.h"

int main() {
  using namespace xbench;
  std::printf("XBench reproduction — corpus statistics (paper Table 2)\n\n");
  std::printf("%-12s %8s  %-16s %13s\n", "Source", "Files", "[min,max] size",
              "Total");

  for (datagen::DbClass cls : workload::AllClasses()) {
    datagen::GenConfig config;
    config.target_bytes = harness::TargetBytes(workload::Scale::kNormal);
    config.seed = harness::BenchSeed();
    datagen::GeneratedDatabase db = datagen::Generate(cls, config);

    stats::CorpusAnalyzer analyzer(datagen::DbClassName(cls));
    for (const datagen::GeneratedDocument& doc : db.documents) {
      analyzer.AddDocument(doc.dom, doc.text.size());
    }
    const stats::CorpusStats& s = analyzer.stats();
    std::printf("%s\n", s.ToRow().c_str());
    std::printf(
        "  elements=%llu attrs=%llu element-types=%zu max-depth=%d "
        "text-ratio=%.2f\n",
        static_cast<unsigned long long>(s.element_count),
        static_cast<unsigned long long>(s.attribute_count),
        s.element_type_counts.size(), s.max_depth, s.TextRatio());

    // §2.1.1: fit standard distributions to key occurrence statistics —
    // the parameters that drive the generators.
    struct Edge {
      datagen::DbClass cls;
      const char* parent;
      const char* child;
    };
    static const Edge kEdges[] = {
        {datagen::DbClass::kTcSd, "entry", "sn"},
        {datagen::DbClass::kTcSd, "sn", "qp"},
        {datagen::DbClass::kTcMd, "prolog", "author"},
        {datagen::DbClass::kTcMd, "body", "sec"},
        {datagen::DbClass::kDcSd, "authors", "author"},
        {datagen::DbClass::kDcMd, "order_lines", "order_line"},
    };
    for (const Edge& edge : kEdges) {
      if (edge.cls != cls) continue;
      std::vector<int64_t> samples;
      for (const datagen::GeneratedDocument& doc : db.documents) {
        auto part =
            stats::OccurrenceSamples(*doc.dom.root(), edge.parent,
                                     edge.child);
        samples.insert(samples.end(), part.begin(), part.end());
      }
      if (samples.empty()) continue;
      stats::Fit fit = stats::FitDistribution(samples);
      std::printf("  %s/%s occurrences ~ %s (n=%zu)\n", edge.parent,
                  edge.child, fit.ToString().c_str(), samples.size());
    }
  }
  std::printf(
      "\nPaper reference rows (real corpora):\n"
      "  GCIDE        1        [56 MB]         56 MB\n"
      "  OED          1        [548 MB]        548 MB\n"
      "  Reuters      807000   [1, 59] KB      2484 MB\n"
      "  Springer     196000   [1, 613] KB     1343 MB\n");
  return 0;
}
